package relation

import (
	"math"
	"strings"
	"testing"
)

func TestSummaryPaperExample(t *testing.T) {
	r := PaperExample()
	stats := r.Summary()
	if len(stats) != 5 {
		t.Fatalf("stats for %d columns", len(stats))
	}
	// empnum: 6 distinct over 7 rows, "1" appears twice.
	if stats[0].Distinct != 6 || stats[0].IsUnique || stats[0].IsConstant {
		t.Errorf("empnum stats = %+v", stats[0])
	}
	if stats[0].TopValue != "1" || stats[0].TopCount != 2 {
		t.Errorf("empnum top = %q × %d", stats[0].TopValue, stats[0].TopCount)
	}
	// mgr: 3 distinct values; "2" and "5" appear... 5: rows 1,6; 12: rows
	// 2,7; 2: rows 3,4,5 → top is "2" × 3.
	if stats[4].TopValue != "2" || stats[4].TopCount != 3 {
		t.Errorf("mgr top = %q × %d", stats[4].TopValue, stats[4].TopCount)
	}
	// Entropy sanity: 0 < H(mgr) < H(empnum) ≤ log2(7).
	if !(stats[4].Entropy > 0 && stats[4].Entropy < stats[0].Entropy) {
		t.Errorf("entropy ordering wrong: %v vs %v", stats[4].Entropy, stats[0].Entropy)
	}
	if stats[0].Entropy > math.Log2(7)+1e-9 {
		t.Errorf("entropy exceeds log2(|r|): %v", stats[0].Entropy)
	}
}

func TestSummaryUniqueAndConstant(t *testing.T) {
	r, err := FromRows([]string{"id", "k"}, [][]string{
		{"1", "x"}, {"2", "x"}, {"3", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := r.Summary()
	if !stats[0].IsUnique || stats[0].IsConstant {
		t.Errorf("id stats = %+v", stats[0])
	}
	if exp := math.Log2(3); math.Abs(stats[0].Entropy-exp) > 1e-9 {
		t.Errorf("key entropy = %v, want %v", stats[0].Entropy, exp)
	}
	if !stats[1].IsConstant || stats[1].IsUnique || stats[1].Entropy != 0 {
		t.Errorf("constant stats = %+v", stats[1])
	}
}

func TestSummaryEmptyRelation(t *testing.T) {
	r, err := FromRows([]string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := r.Summary()
	if stats[0].IsUnique || stats[0].IsConstant || stats[0].Distinct != 0 {
		t.Errorf("empty relation stats = %+v", stats[0])
	}
}

func TestSummaryString(t *testing.T) {
	out := PaperExample().SummaryString()
	for _, want := range []string{"column", "empnum", "entropy", "Biochemistry"} {
		if !strings.Contains(out, want) {
			t.Errorf("SummaryString missing %q:\n%s", want, out)
		}
	}
	if got := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); got != 6 {
		t.Errorf("SummaryString rows = %d, want 6", got)
	}
}
