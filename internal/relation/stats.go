package relation

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// ColumnStats summarises one attribute of a relation — the profiling
// facts a dba reads next to discovered dependencies.
type ColumnStats struct {
	Name string
	// Distinct is |π_A(r)|, the active-domain size.
	Distinct int
	// IsUnique reports whether the column alone is a key.
	IsUnique bool
	// IsConstant reports whether the column has a single value
	// (∅ → A holds).
	IsConstant bool
	// TopValue is the most frequent value and TopCount its multiplicity.
	TopValue string
	TopCount int
	// Entropy is the Shannon entropy of the value distribution in bits —
	// 0 for constants, log2(|r|) for keys.
	Entropy float64
}

// Summary profiles every column of the relation.
func (r *Relation) Summary() []ColumnStats {
	out := make([]ColumnStats, r.Arity())
	for a := 0; a < r.Arity(); a++ {
		counts := make([]int, r.DomainSize(a))
		for _, code := range r.cols[a] {
			counts[code]++
		}
		st := ColumnStats{
			Name:       r.names[a],
			Distinct:   r.DomainSize(a),
			IsConstant: r.DomainSize(a) <= 1 && r.rows > 0,
		}
		unique := true
		top, topCount := -1, 0
		for code, c := range counts {
			if c > 1 {
				unique = false
			}
			if c > topCount {
				top, topCount = code, c
			}
			if c > 0 && r.rows > 0 {
				p := float64(c) / float64(r.rows)
				st.Entropy -= p * math.Log2(p)
			}
		}
		st.IsUnique = unique && r.rows > 0
		if top >= 0 {
			st.TopValue = r.dicts[a][top]
			st.TopCount = topCount
		}
		out[a] = st
	}
	return out
}

// SummaryString renders the profile as an aligned table.
func (r *Relation) SummaryString() string {
	stats := r.Summary()
	rows := [][]string{{"column", "distinct", "unique", "constant", "top value", "freq", "entropy"}}
	for _, s := range stats {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Distinct),
			fmt.Sprintf("%v", s.IsUnique),
			fmt.Sprintf("%v", s.IsConstant),
			s.TopValue,
			fmt.Sprintf("%d", s.TopCount),
			fmt.Sprintf("%.2f", s.Entropy),
		})
	}
	widths := map[int]int{}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	cols := make([]int, 0, len(widths))
	for i := range widths {
		cols = append(cols, i)
	}
	slices.Sort(cols)
	var b strings.Builder
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
