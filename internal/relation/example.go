package relation

// PaperExample returns the running example of the Dep-Miner paper
// (Example 1): the 7-tuple assignment of employees to departments over
// schema (empnum, depnum, year, depname, mgr), abbreviated A..E.
//
// It is used as a golden fixture throughout the test suite — every
// intermediate result of the pipeline (stripped partitions, MC, agree
// sets, max/cmax sets, LHSs, FDs, Armstrong relations) is spelled out in
// the paper for this relation — and by examples/quickstart.
func PaperExample() *Relation {
	r, err := FromRows(
		[]string{"empnum", "depnum", "year", "depname", "mgr"},
		[][]string{
			{"1", "1", "85", "Biochemistry", "5"},
			{"1", "5", "94", "Admission", "12"},
			{"2", "2", "92", "Computer Sce", "2"},
			{"3", "2", "98", "Computer Sce", "2"},
			{"4", "3", "98", "Geophysics", "2"},
			{"5", "1", "75", "Biochemistry", "5"},
			{"6", "5", "88", "Admission", "12"},
		},
	)
	if err != nil {
		panic("relation: paper example must build: " + err.Error())
	}
	return r
}
