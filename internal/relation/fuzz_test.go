package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadCSV asserts that the CSV loader never panics on arbitrary byte
// input, and that accepted relations round-trip through WriteCSV: loading
// a written relation is lossless.
//
// The invariant is double-write idempotence — write(load(x)) equals
// write(load(write(load(x)))) — rather than input-byte identity, because
// encoding/csv canonicalises on the way in (CRLF normalisation in quoted
// fields, quote stripping), so the original bytes are not recoverable.
// After one write the representation is canonical and must be a fixed
// point.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n1,3\n"), true)
	f.Add([]byte("a,b\n1,2"), false)
	f.Add([]byte("name\n\"multi\nline\"\n"), true)
	f.Add([]byte("x,y,z\n,,\n,,\n"), true)
	f.Add([]byte("\"q\"\"q\",v\r\n1,2\r\n"), true)
	f.Add([]byte(""), true)
	f.Add([]byte("a,b\n1\n"), true)        // ragged row: rejected by FromRows
	f.Add([]byte("héllo,wörld\n✓,✗\n"), true)
	f.Fuzz(func(t *testing.T, data []byte, header bool) {
		r, err := Load(bytes.NewReader(data), header)
		if err != nil {
			return // rejected input; only the absence of a panic matters
		}

		var first bytes.Buffer
		if err := r.WriteCSV(&first); err != nil {
			t.Fatalf("WriteCSV failed on a loaded relation: %v", err)
		}
		// A written relation always has a header row, so reload with
		// header=true regardless of how the original was read.
		r2, err := Load(bytes.NewReader(first.Bytes()), true)
		if err != nil {
			t.Fatalf("reloading WriteCSV output failed: %v\noutput:\n%s", err, first.String())
		}
		if r2.Rows() != r.Rows() || r2.Arity() != r.Arity() {
			t.Fatalf("round trip changed shape: %d×%d -> %d×%d",
				r.Rows(), r.Arity(), r2.Rows(), r2.Arity())
		}
		for a := range r.Names() {
			if got, want := r2.Name(a), r.Name(a); got != want {
				t.Fatalf("round trip changed attribute %d name: %q -> %q", a, want, got)
			}
			for tu := 0; tu < r.Rows(); tu++ {
				if got, want := r2.Value(tu, a), r.Value(tu, a); got != want {
					t.Fatalf("round trip changed value at (%d,%d): %q -> %q", tu, a, want, got)
				}
			}
		}
		var second bytes.Buffer
		if err := r2.WriteCSV(&second); err != nil {
			t.Fatalf("second WriteCSV failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("WriteCSV is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}
	})
}

// FuzzFromRows asserts the constructor never panics and enforces its
// documented invariants (rectangular input, attribute count within the
// bit-vector limit) by returning errors instead.
func FuzzFromRows(f *testing.F) {
	f.Add("a|b", "1|2;3|4")
	f.Add("", "")
	f.Add("x", "1;2;1")
	f.Add("a|a", "v|v")
	f.Fuzz(func(t *testing.T, namesSpec, rowsSpec string) {
		names := strings.Split(namesSpec, "|")
		var rows [][]string
		if rowsSpec != "" {
			for _, line := range strings.Split(rowsSpec, ";") {
				rows = append(rows, strings.Split(line, "|"))
			}
		}
		r, err := FromRows(names, rows)
		if err != nil {
			return
		}
		if r.Arity() != len(names) || r.Rows() != len(rows) {
			t.Fatalf("accepted relation has shape %d×%d, input was %d×%d",
				r.Rows(), r.Arity(), len(rows), len(names))
		}
	})
}
