package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attrset"
)

func TestFromRowsBasics(t *testing.T) {
	r := PaperExample()
	if r.Rows() != 7 {
		t.Fatalf("Rows = %d, want 7", r.Rows())
	}
	if r.Arity() != 5 {
		t.Fatalf("Arity = %d, want 5", r.Arity())
	}
	if r.Schema() != attrset.Universe(5) {
		t.Error("Schema mismatch")
	}
	if r.Name(3) != "depname" {
		t.Errorf("Name(3) = %q", r.Name(3))
	}
	if r.Value(0, 3) != "Biochemistry" || r.Value(4, 3) != "Geophysics" {
		t.Error("Value lookup wrong")
	}
	// Tuples 0 and 5 share depnum=1, depname=Biochemistry, mgr=5.
	if r.Code(0, 1) != r.Code(5, 1) || r.Code(0, 3) != r.Code(5, 3) {
		t.Error("dictionary codes should match for equal values")
	}
	if r.Code(0, 0) == r.Code(2, 0) {
		t.Error("distinct values must have distinct codes")
	}
}

func TestDomainSizes(t *testing.T) {
	r := PaperExample()
	// From the paper's Example 13: |π_A| = 6, |π_B| = 4, |π_C| = 6,
	// |π_D| = 4, |π_E| = 3 (values 5, 12, 2).
	want := []int{6, 4, 6, 4, 3}
	for a, w := range want {
		if got := r.DomainSize(a); got != w {
			t.Errorf("DomainSize(%c) = %d, want %d", 'A'+a, got, w)
		}
	}
}

func TestAgreeSetDirect(t *testing.T) {
	r := PaperExample()
	cases := []struct {
		ti, tj int
		want   string
	}{
		{0, 1, "A"},
		{0, 5, "BDE"},
		{1, 6, "BDE"},
		{2, 3, "BDE"},
		{2, 4, "E"},
		{3, 4, "CE"},
		{0, 2, "∅"},
	}
	for _, c := range cases {
		if got := r.AgreeSet(c.ti, c.tj).String(); got != c.want {
			t.Errorf("ag(%d,%d) = %s, want %s", c.ti+1, c.tj+1, got, c.want)
		}
	}
	// Agree is consistent with AgreeSet.
	for _, c := range cases {
		s, _ := attrset.Parse(strings.ReplaceAll(c.want, "∅", ""))
		if !r.Agree(c.ti, c.tj, s) {
			t.Errorf("Agree(%d,%d,%s) = false", c.ti, c.tj, c.want)
		}
		if !s.Contains(0) && !r.Agree(c.ti, c.tj, s) {
			t.Errorf("Agree subset check failed")
		}
	}
	if r.Agree(0, 2, attrset.New(0)) {
		t.Error("tuples 1,3 disagree on A")
	}
}

func TestSatisfiesPaperFDs(t *testing.T) {
	r := PaperExample()
	holds := []struct {
		lhs string
		rhs int
	}{
		{"BC", 0}, {"CD", 0}, {"AC", 1}, {"AE", 1}, {"D", 1},
		{"AB", 2}, {"AD", 2}, {"AE", 2}, {"AC", 3}, {"AE", 3},
		{"B", 3}, {"B", 4}, {"C", 4}, {"D", 4},
	}
	for _, fd := range holds {
		x, _ := attrset.Parse(fd.lhs)
		if !r.Satisfies(x, fd.rhs) {
			t.Errorf("r should satisfy %s → %c", fd.lhs, 'A'+fd.rhs)
		}
	}
	fails := []struct {
		lhs string
		rhs int
	}{
		{"B", 0}, {"C", 0}, {"D", 0}, {"E", 0}, {"BD", 0}, {"BE", 0},
		{"A", 1}, {"C", 1}, {"E", 1}, {"A", 2}, {"B", 2}, {"E", 3}, {"A", 4},
	}
	for _, fd := range fails {
		x, _ := attrset.Parse(fd.lhs)
		if r.Satisfies(x, fd.rhs) {
			t.Errorf("r should NOT satisfy %s → %c", fd.lhs, 'A'+fd.rhs)
		}
	}
	// Trivial and empty-lhs cases.
	if !r.Satisfies(attrset.New(0), 0) {
		t.Error("A → A must hold")
	}
	if r.Satisfies(attrset.Empty(), 0) {
		t.Error("∅ → A must fail when column A is not constant")
	}
}

func TestSatisfiesEmptyLHSConstantColumn(t *testing.T) {
	r, err := FromRows([]string{"x", "y"}, [][]string{{"1", "k"}, {"2", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Satisfies(attrset.Empty(), 1) {
		t.Error("∅ → y must hold for constant column")
	}
	if r.Satisfies(attrset.Empty(), 0) {
		t.Error("∅ → x must fail")
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows([]string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Error("ragged row should error")
	}
	names := make([]string, attrset.MaxAttrs+1)
	if _, err := FromRows(names, nil); err == nil {
		t.Error("oversized schema should error")
	}
}

func TestFromCodes(t *testing.T) {
	r, err := FromCodes([]string{"a", "b"}, [][]int{{5, 5, 9}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 3 || r.Arity() != 2 {
		t.Fatalf("shape %dx%d", r.Rows(), r.Arity())
	}
	if r.Code(0, 0) != r.Code(1, 0) || r.Code(0, 0) == r.Code(2, 0) {
		t.Error("dense re-encoding broken")
	}
	if r.Value(2, 0) != "9" {
		t.Errorf("Value = %q, want 9", r.Value(2, 0))
	}
	if _, err := FromCodes([]string{"a"}, [][]int{{1}, {2}}); err == nil {
		t.Error("column count mismatch should error")
	}
	if _, err := FromCodes([]string{"a", "b"}, [][]int{{1, 2}, {1}}); err == nil {
		t.Error("ragged columns should error")
	}
}

func TestLoadCSV(t *testing.T) {
	csvData := "a,b,c\n1,x,9\n2,x,9\n1,y,8\n"
	r, err := Load(strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 3 || r.Arity() != 3 {
		t.Fatalf("shape %dx%d", r.Rows(), r.Arity())
	}
	if r.Name(1) != "b" {
		t.Errorf("Name(1) = %q", r.Name(1))
	}
	r2, err := Load(strings.NewReader("1,x\n2,y\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rows() != 2 || r2.Name(0) != "col0" {
		t.Error("headerless load broken")
	}
	if _, err := Load(strings.NewReader(""), true); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Load(strings.NewReader("a,b\n1\n"), true); err == nil {
		t.Error("ragged csv should error")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	r := PaperExample()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != r.Rows() || back.Arity() != r.Arity() {
		t.Fatal("round-trip shape mismatch")
	}
	for tt := 0; tt < r.Rows(); tt++ {
		for a := 0; a < r.Arity(); a++ {
			if back.Value(tt, a) != r.Value(tt, a) {
				t.Fatalf("round-trip value (%d,%d) = %q, want %q",
					tt, a, back.Value(tt, a), r.Value(tt, a))
			}
		}
	}
}

func TestProject(t *testing.T) {
	r := PaperExample()
	p := r.Project(attrset.New(1, 3, 4))
	if p.Arity() != 3 || p.Rows() != 7 {
		t.Fatalf("projection shape %dx%d", p.Rows(), p.Arity())
	}
	if p.Name(0) != "depnum" || p.Name(2) != "mgr" {
		t.Error("projection names wrong")
	}
	if p.Value(0, 1) != "Biochemistry" {
		t.Errorf("projection value = %q", p.Value(0, 1))
	}
}

func TestRestrictAndRow(t *testing.T) {
	r := PaperExample()
	s := r.Restrict([]int{2, 0, 2})
	if s.Rows() != 3 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	if got := s.Row(0); got[3] != "Computer Sce" {
		t.Errorf("Row(0) = %v", got)
	}
	if got := s.Row(1); got[3] != "Biochemistry" {
		t.Errorf("Row(1) = %v", got)
	}
	if s.Value(2, 0) != "2" {
		t.Error("repeated index broken")
	}
}

func TestDeduplicate(t *testing.T) {
	r, err := FromRows([]string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"2", "y"}, {"1", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := r.Deduplicate()
	if d.Rows() != 2 {
		t.Fatalf("dedup Rows = %d, want 2", d.Rows())
	}
	// Already-unique relations are returned as-is.
	if p := PaperExample(); p.Deduplicate() != p {
		t.Error("Deduplicate should return receiver when no duplicates")
	}
}

func TestStringRendering(t *testing.T) {
	r := PaperExample()
	s := r.String()
	if !strings.Contains(s, "empnum") || !strings.Contains(s, "Geophysics") {
		t.Errorf("String output missing content:\n%s", s)
	}
	if got := len(strings.Split(strings.TrimRight(s, "\n"), "\n")); got != 8 {
		t.Errorf("String rows = %d, want 8", got)
	}
}

// TestPropertySatisfiesMonotone: if X → A holds, any superset of X also
// determines A (augmentation), checked against random relations.
func TestPropertySatisfiesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(4)
		rows := 2 + rng.Intn(20)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for t := range cols[a] {
				cols[a][t] = rng.Intn(dom)
			}
		}
		r, err := FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for xbits := 0; xbits < 1<<n; xbits++ {
				var x attrset.Set
				for b := 0; b < n; b++ {
					if xbits&(1<<b) != 0 {
						x.Add(b)
					}
				}
				if !r.Satisfies(x, a) {
					continue
				}
				// Augment with one more attribute; must still hold.
				for b := 0; b < n; b++ {
					if !r.Satisfies(x.With(b), a) {
						t.Fatalf("augmentation violated: %v→%d holds but %v→%d fails",
							x, a, x.With(b), a)
					}
				}
			}
		}
	}
}

// TestPropertyAgreeSetSymmetry: ag(ti,tj) = ag(tj,ti) and ag(t,t) = R.
func TestPropertyAgreeSetSymmetry(t *testing.T) {
	r := PaperExample()
	for i := 0; i < r.Rows(); i++ {
		if r.AgreeSet(i, i) != r.Schema() {
			t.Fatalf("ag(t,t) != R for t=%d", i)
		}
		for j := 0; j < r.Rows(); j++ {
			if r.AgreeSet(i, j) != r.AgreeSet(j, i) {
				t.Fatalf("agree set asymmetric for (%d,%d)", i, j)
			}
		}
	}
}
