// Package relation provides the in-memory relation substrate on which FD
// discovery operates.
//
// A Relation is a dictionary-encoded column store: each column maps the
// original string values to dense integer codes, and stores one code per
// tuple. Two tuples agree on attribute A exactly when their codes for A are
// equal, so every downstream algorithm (partitions, agree sets, TANE) works
// purely on integers.
//
// The paper reads relations over ODBC from Oracle/MS Access; this package
// substitutes CSV files plus an in-memory store (see DESIGN.md §6). Like
// the paper's setting, "database accesses are only performed during the
// computation of agree sets": discovery consumes only the stripped
// partition database derived from a Relation, never the raw values again
// (except to print real-world Armstrong relations).
package relation

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/attrset"
)

// ErrTooManyAttributes is returned when a schema exceeds attrset.MaxAttrs.
var ErrTooManyAttributes = fmt.Errorf("relation: schema exceeds %d attributes", attrset.MaxAttrs)

// ErrRaggedRow is returned when a CSV row has a different arity than the
// header.
var ErrRaggedRow = errors.New("relation: row arity differs from schema")

// Relation is an immutable dictionary-encoded relation instance.
//
// Tuples are identified by their dense index 0..Rows()-1 — the paper's
// "positive integer unique to t". Note the paper defines a relation as a
// *set* of tuples; Load and FromRows keep duplicate rows by default.
// This is safe: duplicates change neither dep(r) nor ag(r) — the agree
// algorithms collapse couples of identical tuples (set semantics) — so
// Deduplicate is only needed to shrink storage.
type Relation struct {
	names []string
	// cols[a][t] is the dictionary code of tuple t on attribute a.
	cols [][]int
	// dicts[a][code] is the original string for that code, used to print
	// real-world Armstrong relations with values from the initial relation.
	dicts [][]string
	rows  int
}

// FromRows builds a relation from attribute names and string rows.
func FromRows(names []string, rows [][]string) (*Relation, error) {
	if !attrset.Valid(len(names)) {
		return nil, ErrTooManyAttributes
	}
	r := &Relation{
		names: append([]string(nil), names...),
		cols:  make([][]int, len(names)),
		dicts: make([][]string, len(names)),
		rows:  len(rows),
	}
	codes := make([]map[string]int, len(names))
	for a := range names {
		r.cols[a] = make([]int, len(rows))
		codes[a] = make(map[string]int)
	}
	for t, row := range rows {
		if len(row) != len(names) {
			return nil, fmt.Errorf("%w: row %d has %d fields, schema has %d",
				ErrRaggedRow, t, len(row), len(names))
		}
		for a, v := range row {
			code, ok := codes[a][v]
			if !ok {
				code = len(r.dicts[a])
				codes[a][v] = code
				r.dicts[a] = append(r.dicts[a], v)
			}
			r.cols[a][t] = code
		}
	}
	return r, nil
}

// FromCodes builds a relation directly from integer-coded columns,
// cols[a][t]. It is the fast path used by the synthetic data generator:
// dictionary strings are materialised lazily as the decimal representation
// of the code. All columns must have equal length.
func FromCodes(names []string, cols [][]int) (*Relation, error) {
	if !attrset.Valid(len(names)) {
		return nil, ErrTooManyAttributes
	}
	if len(cols) != len(names) {
		return nil, fmt.Errorf("relation: %d columns for %d attributes", len(cols), len(names))
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	r := &Relation{
		names: append([]string(nil), names...),
		cols:  make([][]int, len(names)),
		dicts: make([][]string, len(names)),
		rows:  rows,
	}
	for a := range cols {
		if len(cols[a]) != rows {
			return nil, fmt.Errorf("relation: column %d has %d rows, want %d", a, len(cols[a]), rows)
		}
		// Re-encode into dense codes in first-occurrence order so that
		// dictionaries stay compact even if the input codes are sparse.
		dense := make(map[int]int)
		col := make([]int, rows)
		for t, v := range cols[a] {
			code, ok := dense[v]
			if !ok {
				code = len(r.dicts[a])
				dense[v] = code
				r.dicts[a] = append(r.dicts[a], strconv.Itoa(v))
			}
			col[t] = code
		}
		r.cols[a] = col
	}
	return r, nil
}

// Load reads a CSV relation from rd. If header is true the first record
// names the attributes; otherwise attributes are named col0, col1, ....
func Load(rd io.Reader, header bool) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1 // we validate arity ourselves for better errors
	var names []string
	var rows [][]string
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading csv: %w", err)
		}
		if first {
			first = false
			if header {
				names = append([]string(nil), rec...)
				continue
			}
			names = make([]string, len(rec))
			for i := range rec {
				names[i] = "col" + strconv.Itoa(i)
			}
		}
		rows = append(rows, rec)
	}
	if names == nil {
		return nil, errors.New("relation: empty input")
	}
	return FromRows(names, rows)
}

// LoadFile reads a CSV relation from the named file.
func LoadFile(path string, header bool) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	return Load(f, header)
}

// WriteCSV writes the relation as CSV to w, with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(rec []string) error {
		// A record of exactly one empty field would serialise to a blank
		// line, which CSV readers skip — the tuple (or header) would
		// vanish on reload. Force quotes for that case; encoding/csv
		// offers no per-field quoting control.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			_, err := io.WriteString(w, "\"\"\n")
			return err
		}
		return cw.Write(rec)
	}
	if err := write(r.names); err != nil {
		return fmt.Errorf("relation: writing csv: %w", err)
	}
	row := make([]string, len(r.names))
	for t := 0; t < r.rows; t++ {
		for a := range r.names {
			row[a] = r.dicts[a][r.cols[a][t]]
		}
		if err := write(row); err != nil {
			return fmt.Errorf("relation: writing csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: writing csv: %w", err)
	}
	return nil
}

// Rows returns the number of tuples |r|.
func (r *Relation) Rows() int { return r.rows }

// Arity returns the number of attributes |R|.
func (r *Relation) Arity() int { return len(r.names) }

// Schema returns the full attribute set R = {0..Arity()-1}.
func (r *Relation) Schema() attrset.Set { return attrset.Universe(len(r.names)) }

// Names returns the attribute names. The returned slice must not be
// modified.
func (r *Relation) Names() []string { return r.names }

// Name returns the name of attribute a.
func (r *Relation) Name(a attrset.Attr) string { return r.names[a] }

// Code returns the dictionary code of tuple t on attribute a.
func (r *Relation) Code(t int, a attrset.Attr) int { return r.cols[a][t] }

// Column returns the code column for attribute a. The returned slice must
// not be modified.
func (r *Relation) Column(a attrset.Attr) []int { return r.cols[a] }

// Value returns the original string value of tuple t on attribute a.
func (r *Relation) Value(t int, a attrset.Attr) string {
	return r.dicts[a][r.cols[a][t]]
}

// ValueForCode returns the original string for a dictionary code of
// attribute a.
func (r *Relation) ValueForCode(a attrset.Attr, code int) string {
	return r.dicts[a][code]
}

// DomainSize returns |π_A(r)|, the number of distinct values of attribute a
// in the relation. This is the quantity in the paper's Proposition 1
// existence condition for real-world Armstrong relations.
func (r *Relation) DomainSize(a attrset.Attr) int { return len(r.dicts[a]) }

// Agree reports whether tuples ti and tj agree on every attribute of X,
// i.e. ti[X] = tj[X].
func (r *Relation) Agree(ti, tj int, x attrset.Set) bool {
	ok := true
	x.ForEach(func(a attrset.Attr) {
		if r.cols[a][ti] != r.cols[a][tj] {
			ok = false
		}
	})
	return ok
}

// AgreeSet returns ag(ti, tj) = {A ∈ R | ti[A] = tj[A]} by direct value
// comparison. This is the primitive the naive agree-set algorithm pays for
// on every couple and the stripped-partition algorithms avoid.
func (r *Relation) AgreeSet(ti, tj int) attrset.Set {
	var s attrset.Set
	for a := range r.cols {
		if r.cols[a][ti] == r.cols[a][tj] {
			s.Add(a)
		}
	}
	return s
}

// Satisfies reports whether the functional dependency X → A holds in r, by
// definition: ∀ti,tj, ti[X] = tj[X] ⇒ ti[A] = tj[A]. It groups tuples by
// their X-projection in a hash map, so it runs in O(|r|·|X|) time. Use it
// as the ground-truth oracle in tests; discovery algorithms use partitions
// instead.
func (r *Relation) Satisfies(x attrset.Set, a attrset.Attr) bool {
	attrs := x.Attrs()
	groups := make(map[string]int, r.rows)
	var key strings.Builder
	for t := 0; t < r.rows; t++ {
		key.Reset()
		for _, xa := range attrs {
			key.WriteString(strconv.Itoa(r.cols[xa][t]))
			key.WriteByte('|')
		}
		k := key.String()
		if prev, ok := groups[k]; ok {
			if prev != r.cols[a][t] {
				return false
			}
		} else {
			groups[k] = r.cols[a][t]
		}
	}
	return true
}

// Project returns a new relation containing only the attributes of X, in
// increasing index order, with all tuples preserved (duplicates kept).
func (r *Relation) Project(x attrset.Set) *Relation {
	attrs := x.Attrs()
	names := make([]string, len(attrs))
	cols := make([][]int, len(attrs))
	dicts := make([][]string, len(attrs))
	for i, a := range attrs {
		names[i] = r.names[a]
		cols[i] = r.cols[a] // immutable; safe to share
		dicts[i] = r.dicts[a]
	}
	return &Relation{names: names, cols: cols, dicts: dicts, rows: r.rows}
}

// Restrict returns a new relation containing only the tuples whose indices
// are listed, in the given order. Indices may repeat.
func (r *Relation) Restrict(tuples []int) *Relation {
	cols := make([][]int, len(r.names))
	for a := range r.cols {
		col := make([]int, len(tuples))
		for i, t := range tuples {
			col[i] = r.cols[a][t]
		}
		cols[a] = col
	}
	return &Relation{
		names: r.names,
		cols:  cols,
		dicts: r.dicts,
		rows:  len(tuples),
	}
}

// Deduplicate returns a relation with duplicate tuples removed (first
// occurrence kept), restoring strict set-of-tuples semantics.
func (r *Relation) Deduplicate() *Relation {
	seen := make(map[string]struct{}, r.rows)
	var keep []int
	var key strings.Builder
	for t := 0; t < r.rows; t++ {
		key.Reset()
		for a := range r.cols {
			key.WriteString(strconv.Itoa(r.cols[a][t]))
			key.WriteByte('|')
		}
		k := key.String()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keep = append(keep, t)
	}
	if len(keep) == r.rows {
		return r
	}
	return r.Restrict(keep)
}

// Row returns the string values of tuple t in schema order.
func (r *Relation) Row(t int) []string {
	out := make([]string, len(r.names))
	for a := range r.cols {
		out[a] = r.dicts[a][r.cols[a][t]]
	}
	return out
}

// String renders the relation as an aligned text table (for examples and
// debugging; not for large relations).
func (r *Relation) String() string {
	widths := make([]int, len(r.names))
	for a, n := range r.names {
		widths[a] = len(n)
		for _, v := range r.dicts[a] {
			if len(v) > widths[a] {
				widths[a] = len(v)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for a, c := range cells {
			if a > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[a]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.names)
	for t := 0; t < r.rows; t++ {
		writeRow(r.Row(t))
	}
	return b.String()
}
