package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestAttrConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		attr Attr
		kind Kind
		str  string
	}{
		{String("s", "v"), KindString, "v"},
		{Int("i", 7), KindInt64, "7"},
		{Int64("i64", -12), KindInt64, "-12"},
		{Float64("f", 1.5), KindFloat64, "1.5"},
		{Bool("b", true), KindBool, "true"},
		{Bool("b", false), KindBool, "false"},
		{Duration("d", 250 * time.Millisecond), KindDuration, "250ms"},
	}
	for _, c := range cases {
		if c.attr.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.attr.Key(), c.attr.Kind(), c.kind)
		}
		if got := c.attr.AsString(); got != c.str {
			t.Errorf("%s: AsString = %q, want %q", c.attr.Key(), got, c.str)
		}
	}
	if got := Int64("i", 42).AsInt64(); got != 42 {
		t.Errorf("AsInt64 = %d, want 42", got)
	}
	if got := Float64("f", 2.25).AsFloat64(); got != 2.25 {
		t.Errorf("AsFloat64 = %v, want 2.25", got)
	}
	if !Bool("b", true).AsBool() || Bool("b", false).AsBool() {
		t.Error("AsBool round-trip broken")
	}
	if got := Duration("d", time.Second).AsDuration(); got != time.Second {
		t.Errorf("AsDuration = %v, want 1s", got)
	}
}

func TestSetSortedDedup(t *testing.T) {
	s := NewSet(String("b", "1"), String("a", "2"), String("b", "3"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (last-wins dedup)", s.Len())
	}
	keys := s.Keys()
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v, want sorted [a b]", keys)
	}
	b, ok := s.Get("b")
	if !ok || b.AsString() != "3" {
		t.Fatalf("Get(b) = %v %v, want last value 3", b, ok)
	}
	if s.Has("c") {
		t.Error("Has(c) = true for absent key")
	}
}

func TestSetMergeImmutable(t *testing.T) {
	base := NewSet(String("a", "1"))
	merged := base.Merge(String("a", "override"), String("z", "new"))
	if got, _ := base.Get("a"); got.AsString() != "1" {
		t.Errorf("Merge mutated receiver: a = %q", got.AsString())
	}
	if base.Len() != 1 {
		t.Errorf("Merge mutated receiver length: %d", base.Len())
	}
	if got, _ := merged.Get("a"); got.AsString() != "override" {
		t.Errorf("merged a = %q, want override", got.AsString())
	}
	if !merged.Has("z") || merged.Len() != 2 {
		t.Errorf("merged = %v, want {a, z}", merged.Keys())
	}

	other := NewSet(Int("n", 9))
	both := merged.MergeSet(other)
	if both.Len() != 3 || !both.Has("n") {
		t.Errorf("MergeSet = %v, want {a, n, z}", both.Keys())
	}
}

func TestSetRangeEarlyStop(t *testing.T) {
	s := NewSet(String("a", "1"), String("b", "2"), String("c", "3"))
	var seen []string
	s.Range(func(a Attr) bool {
		seen = append(seen, a.Key())
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Errorf("Range visited %v, want [a b]", seen)
	}
}

func TestContextAttrs(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Error("RequestID on bare context should be empty")
	}
	ctx = ContextWithAttrs(ctx, String(AttrKeyRequestID, "abc123"), String("dataset", "d1"))
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("RequestID = %q, want abc123", got)
	}
	// Nested calls accumulate.
	ctx2 := ContextWithAttrs(ctx, Int("shard", 3))
	set := ContextAttrs(ctx2)
	if set.Len() != 3 {
		t.Fatalf("nested attrs Len = %d, want 3 (%v)", set.Len(), set.Keys())
	}
	// The parent context is untouched.
	if ContextAttrs(ctx).Has("shard") {
		t.Error("child attrs leaked into parent context")
	}
	// ContextWithSet replaces wholesale — the async-job bridge.
	detached := ContextWithSet(context.Background(), set)
	if RequestID(detached) != "abc123" {
		t.Error("ContextWithSet lost request id")
	}
}

func TestLoggerMergesContextAttrs(t *testing.T) {
	var buf strings.Builder
	log, err := NewLogger(&buf, Config{Level: "debug", Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithAttrs(context.Background(), String(AttrKeyRequestID, "rid-1"))
	Logger(ctx, log).Info("hello", "extra", 1)
	out := buf.String()
	if !strings.Contains(out, "request_id=rid-1") {
		t.Errorf("log line missing request id: %q", out)
	}
	if !strings.Contains(out, "extra=1") {
		t.Errorf("log line missing call-site attr: %q", out)
	}
	// Nil base must not panic and must stay silent.
	Logger(ctx, nil).Info("dropped")
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR", "WARN": "WARN",
	} {
		lv, err := ParseLevel(in)
		if err != nil || lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %s", in, lv, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage level")
	}
}

func TestConfigLayer(t *testing.T) {
	got := Config{Level: "debug"}.Layer(Config{Level: "info", Format: "json"})
	if got.Level != "debug" || got.Format != "json" {
		t.Errorf("Layer = %+v, want level=debug format=json", got)
	}
	if _, err := NewLogger(&strings.Builder{}, Config{Format: "xml"}); err == nil {
		t.Error("NewLogger accepted bad format")
	}
}

func TestBuildNeverEmpty(t *testing.T) {
	b := Build()
	if b.Version == "" || b.Revision == "" || b.GoVersion == "" {
		t.Errorf("Build() has empty fields: %+v", b)
	}
}
