package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half of obs: a dependency-free Prometheus text-exposition
// registry. Two kinds of instrument coexist:
//
//   - native instruments (Counter, Gauge, Histogram, and their labelled
//     Vec forms) are atomics, cheap enough for per-request hot paths —
//     one atomic add per observation, no locks after child creation;
//   - samplers are scrape-time callbacks bridging counters that already
//     live elsewhere (the server's queue/cache/pstore/durable/spill/
//     shard stats) into declared metric families, so /metrics and
//     /v1/stats read the same underlying numbers by construction.
//
// The exposition is the Prometheus text format (version 0.0.4): HELP and
// TYPE lines per family, families sorted by name, series sorted by
// label signature.

// Label is one name/value pair on a metric series.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing native instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a native instrument that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a native instrument with fixed bucket bounds. Observe is
// one binary search plus two atomic adds — safe on request hot paths.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last = +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefDurationBuckets are the default request-latency bucket bounds in
// seconds, spanning sub-millisecond cache hits to multi-second
// discoveries.
var DefDurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe files one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind tags a family for the TYPE line.
type metricKind string

const (
	KindCounterFamily   metricKind = "counter"
	KindGaugeFamily     metricKind = "gauge"
	KindHistogramFamily metricKind = "histogram"
)

// series is one rendered line: name + label signature + value.
type series struct {
	labels string // rendered {a="b",...} signature, "" for none
	value  float64
	integer bool
}

// family is one named metric family with its metadata and the closure
// that collects its current series.
type family struct {
	name    string
	help    string
	kind    metricKind
	collect func(emit func(labels []Label, value float64))
}

// Registry owns metric families and renders the text exposition. All
// registration methods panic on duplicate or invalid names —
// registration happens at server construction, where a conflict is a
// programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	samplers []func(emit EmitFunc)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) addFamily(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.families[f.name] = f
	r.order = append(r.order, f.name)
}

// Counter registers and returns a native counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.addFamily(&family{name: name, help: help, kind: KindCounterFamily,
		collect: func(emit func([]Label, float64)) { emit(nil, float64(c.Value())) }})
	return c
}

// Gauge registers and returns a native gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.addFamily(&family{name: name, help: help, kind: KindGaugeFamily,
		collect: func(emit func([]Label, float64)) { emit(nil, float64(g.Value())) }})
	return g
}

// Histogram registers and returns a native histogram with the given
// ascending upper bucket bounds (+Inf implicit; nil = DefDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.addFamily(&family{name: name, help: help, kind: KindHistogramFamily,
		collect: func(emit func([]Label, float64)) { emitHistogram(h, nil, emit) }})
	return h
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// emitHistogram renders a histogram's bucket/sum/count series through
// emit, with base labels prepended.
func emitHistogram(h *Histogram, base []Label, emit func([]Label, float64)) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		emit(append(append([]Label(nil), base...), Label{"le", formatBound(b)}), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	emit(append(append([]Label(nil), base...), Label{"le", "+Inf"}), float64(cum))
	emit(append([]Label{{Name: "__sum"}}, base...), h.Sum())
	emit(append([]Label{{Name: "__count"}}, base...), float64(cum))
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// vecState is the shared machinery of labelled instruments: children
// keyed by their label values, created on first use, read-locked on the
// hot path.
type vecState struct {
	labelNames []string
	mu         sync.RWMutex
	children   map[string][]Label // key -> label pairs (for rendering)
}

func newVecState(labelNames []string) *vecState {
	return &vecState{labelNames: labelNames, children: make(map[string][]Label)}
}

func (v *vecState) key(values []string) string {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: vec wants %d label values, got %d", len(v.labelNames), len(values)))
	}
	return strings.Join(values, "\x00")
}

func (v *vecState) labels(values []string) []Label {
	ls := make([]Label, len(values))
	for i, val := range values {
		ls[i] = Label{Name: v.labelNames[i], Value: val}
	}
	return ls
}

// CounterVec is a labelled counter family.
type CounterVec struct {
	*vecState
	counters map[string]*Counter
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{vecState: newVecState(labelNames), counters: make(map[string]*Counter)}
	r.addFamily(&family{name: name, help: help, kind: KindCounterFamily,
		collect: func(emit func([]Label, float64)) {
			cv.mu.RLock()
			defer cv.mu.RUnlock()
			for k, c := range cv.counters {
				emit(cv.children[k], float64(c.Value()))
			}
		}})
	return cv
}

// With returns the child counter for the given label values, creating
// it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	k := cv.key(values)
	cv.mu.RLock()
	c, ok := cv.counters[k]
	cv.mu.RUnlock()
	if ok {
		return c
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c, ok = cv.counters[k]; ok {
		return c
	}
	c = &Counter{}
	cv.counters[k] = c
	cv.children[k] = cv.labels(values)
	return c
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct {
	*vecState
	bounds []float64
	hists  map[string]*Histogram
}

// HistogramVec registers a labelled histogram family (nil bounds =
// DefDurationBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefDurationBuckets
	}
	hv := &HistogramVec{vecState: newVecState(labelNames), bounds: bounds, hists: make(map[string]*Histogram)}
	r.addFamily(&family{name: name, help: help, kind: KindHistogramFamily,
		collect: func(emit func([]Label, float64)) {
			hv.mu.RLock()
			defer hv.mu.RUnlock()
			for k, h := range hv.hists {
				emitHistogram(h, hv.children[k], emit)
			}
		}})
	return hv
}

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	k := hv.key(values)
	hv.mu.RLock()
	h, ok := hv.hists[k]
	hv.mu.RUnlock()
	if ok {
		return h
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if h, ok = hv.hists[k]; ok {
		return h
	}
	h = newHistogram(hv.bounds)
	hv.hists[k] = h
	hv.children[k] = hv.labels(values)
	return h
}

// EmitFunc files one sampled series into its declared family.
type EmitFunc func(name string, labels []Label, value float64)

// DeclareSampled declares a family whose series are produced by
// samplers at scrape time — the bridge for counters owned elsewhere.
func (r *Registry) DeclareSampled(name, help string, kind metricKind) {
	r.addFamily(&family{name: name, help: help, kind: kind})
}

// Sampler registers a scrape-time callback. Each WriteText runs every
// sampler once; emitted series land in the family declared under their
// name (undeclared names panic — declare first, so HELP/TYPE metadata
// is never missing).
func (r *Registry) Sampler(fn func(emit EmitFunc)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers = append(r.samplers, fn)
}

// WriteText renders the full exposition in Prometheus text format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make(map[string]*family, len(r.families))
	for k, v := range r.families {
		fams[k] = v
	}
	samplers := append([]func(EmitFunc){}, r.samplers...)
	r.mu.Unlock()

	sampled := make(map[string][]series)
	for _, fn := range samplers {
		fn(func(name string, labels []Label, value float64) {
			f, ok := fams[name]
			if !ok {
				panic(fmt.Sprintf("obs: sampler emitted undeclared metric %q", name))
			}
			sampled[name] = append(sampled[name], renderSeries(f, name, labels, value)...)
		})
	}

	sort.Strings(order)
	var b strings.Builder
	for _, name := range order {
		f := fams[name]
		var lines []series
		if f.collect != nil {
			f.collect(func(labels []Label, value float64) {
				lines = append(lines, renderSeries(f, name, labels, value)...)
			})
		}
		lines = append(lines, sampled[name]...)
		if len(lines) == 0 && f.collect == nil {
			continue // sampled family with nothing emitted this scrape
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		sort.SliceStable(lines, func(i, j int) bool { return lines[i].labels < lines[j].labels })
		for _, ln := range lines {
			b.WriteString(ln.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(ln.value, ln.integer))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderSeries expands one emitted (labels, value) into output lines.
// Histogram sub-series arrive tagged via pseudo-labels __sum/__count in
// position 0 (an internal contract of emitHistogram) and rename the
// family; everything else renders directly.
func renderSeries(f *family, name string, labels []Label, value float64) []series {
	suffix := ""
	if len(labels) > 0 && strings.HasPrefix(labels[0].Name, "__") {
		switch labels[0].Name {
		case "__sum":
			suffix = "_sum"
		case "__count":
			suffix = "_count"
		}
		labels = labels[1:]
	} else if f.kind == KindHistogramFamily {
		suffix = "_bucket"
	}
	integer := value == math.Trunc(value) && math.Abs(value) < 1e15
	return []series{{labels: name + suffix + renderLabels(labels), value: value, integer: integer}}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64, integer bool) string {
	if integer {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
