// Package obs is the observability subsystem of the repository: the
// structured-logging, metrics, tracing, and profiling plumbing shared by
// depminerd, the shard fleet, and the CLIs (DESIGN.md §16).
//
// Four pillars:
//
//   - attributes: a small, immutable, sorted attribute set (Attr, Set)
//     for request-scoped context — request id, dataset fingerprint,
//     shard index — carried through context.Context and attached to
//     every log line a request produces;
//   - logging: log/slog configuration layered from environment and
//     flags (Config), with a guaranteed-quiet default (Nop) so tests
//     and library use never print;
//   - metrics: a dependency-free Prometheus text-exposition registry
//     (Registry) with atomic counters, gauges, and histograms on the
//     hot paths and scrape-time samplers bridging existing stats
//     structs;
//   - tracing: lightweight spans (StartSpan) that log structured
//     duration events instead of shipping to a collector, so per-phase
//     and per-shard timings can be joined across a fleet by request id.
package obs

import (
	"fmt"
	"log/slog"
	"slices"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates an Attr's payload.
type Kind int

const (
	KindString Kind = iota
	KindInt64
	KindFloat64
	KindBool
	KindDuration
)

// Attr is one key/value attribute. The zero Attr is an empty string
// attribute with an empty key.
type Attr struct {
	key  string
	kind Kind
	str  string
	num  int64 // int64, bool (0/1), duration (ns), or float64 bits
	f    float64
}

// String makes a string attribute.
func String(key, value string) Attr { return Attr{key: key, kind: KindString, str: value} }

// Int makes an int attribute.
func Int(key string, value int) Attr { return Int64(key, int64(value)) }

// Int64 makes an int64 attribute.
func Int64(key string, value int64) Attr { return Attr{key: key, kind: KindInt64, num: value} }

// Float64 makes a float64 attribute.
func Float64(key string, value float64) Attr { return Attr{key: key, kind: KindFloat64, f: value} }

// Bool makes a bool attribute.
func Bool(key string, value bool) Attr {
	n := int64(0)
	if value {
		n = 1
	}
	return Attr{key: key, kind: KindBool, num: n}
}

// Duration makes a duration attribute.
func Duration(key string, value time.Duration) Attr {
	return Attr{key: key, kind: KindDuration, num: int64(value)}
}

// Key returns the attribute's key.
func (a Attr) Key() string { return a.key }

// Kind returns the payload discriminator.
func (a Attr) Kind() Kind { return a.kind }

// AsString renders the value as a string, whatever the kind.
func (a Attr) AsString() string {
	switch a.kind {
	case KindString:
		return a.str
	case KindInt64:
		return strconv.FormatInt(a.num, 10)
	case KindFloat64:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(a.num != 0)
	case KindDuration:
		return time.Duration(a.num).String()
	}
	return ""
}

// AsInt64 returns the integer payload (0 for string/float kinds that do
// not carry one).
func (a Attr) AsInt64() int64 { return a.num }

// AsFloat64 returns the float payload, converting integer kinds.
func (a Attr) AsFloat64() float64 {
	if a.kind == KindFloat64 {
		return a.f
	}
	return float64(a.num)
}

// AsBool returns the boolean payload.
func (a Attr) AsBool() bool { return a.num != 0 }

// AsDuration returns the duration payload.
func (a Attr) AsDuration() time.Duration { return time.Duration(a.num) }

// Slog converts the attribute to its log/slog equivalent.
func (a Attr) Slog() slog.Attr {
	switch a.kind {
	case KindInt64:
		return slog.Int64(a.key, a.num)
	case KindFloat64:
		return slog.Float64(a.key, a.f)
	case KindBool:
		return slog.Bool(a.key, a.num != 0)
	case KindDuration:
		return slog.Duration(a.key, time.Duration(a.num))
	default:
		return slog.String(a.key, a.str)
	}
}

// String implements fmt.Stringer: key=value.
func (a Attr) String() string { return a.key + "=" + a.AsString() }

// Set is an immutable attribute set: sorted by key, deduplicated (last
// value wins). The zero Set is empty and usable. Sets are values —
// Merge returns a new Set, the receiver is never mutated — so a request
// context can be extended (shard index, dataset id) without racing
// sibling goroutines holding the parent set.
type Set struct {
	attrs []Attr
}

// NewSet builds a set from attrs: sorted by key, later duplicates
// winning, empty keys dropped.
func NewSet(attrs ...Attr) Set {
	return Set{}.Merge(attrs...)
}

// Len returns the number of attributes.
func (s Set) Len() int { return len(s.attrs) }

// Keys returns the sorted attribute keys.
func (s Set) Keys() []string {
	keys := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		keys[i] = a.key
	}
	return keys
}

// Get returns the attribute stored under key.
func (s Set) Get(key string) (Attr, bool) {
	i, ok := slices.BinarySearchFunc(s.attrs, key, func(a Attr, k string) int {
		return strings.Compare(a.key, k)
	})
	if !ok {
		return Attr{}, false
	}
	return s.attrs[i], true
}

// Has reports whether key is present.
func (s Set) Has(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Merge returns a new set with attrs layered on top of s (matching keys
// overridden, the receiver unchanged).
func (s Set) Merge(attrs ...Attr) Set {
	if len(attrs) == 0 {
		return s
	}
	merged := make([]Attr, len(s.attrs), len(s.attrs)+len(attrs))
	copy(merged, s.attrs)
	for _, a := range attrs {
		if a.key == "" {
			continue
		}
		i, ok := slices.BinarySearchFunc(merged, a.key, func(x Attr, k string) int {
			return strings.Compare(x.key, k)
		})
		if ok {
			merged[i] = a
		} else {
			merged = slices.Insert(merged, i, a)
		}
	}
	return Set{attrs: merged}
}

// MergeSet layers other on top of s.
func (s Set) MergeSet(other Set) Set { return s.Merge(other.attrs...) }

// Range calls fn for each attribute in key order until fn returns false.
func (s Set) Range(fn func(Attr) bool) {
	for _, a := range s.attrs {
		if !fn(a) {
			return
		}
	}
}

// Slog converts the set to slog attributes, for logger.With / LogAttrs.
func (s Set) Slog() []slog.Attr {
	out := make([]slog.Attr, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Slog()
	}
	return out
}

// Args converts the set to the ...any form of slog.Logger.With.
func (s Set) Args() []any {
	out := make([]any, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Slog()
	}
	return out
}

// String renders the set as (k=v, k=v) in key order.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", a.key, a.AsString())
	}
	b.WriteByte(')')
	return b.String()
}
