package obs

import (
	"runtime/debug"
	"sync"

	"repro/wire"
)

var buildOnce = sync.OnceValue(func() wire.VersionResponse {
	v := wire.VersionResponse{
		Version:   "unknown",
		Revision:  "unknown",
		GoVersion: "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
})

// Build returns the running binary's identity — module version, VCS
// revision, Go toolchain — from the embedded build info. Fields the
// build did not stamp read "unknown". The result also feeds the
// <prefix>_build_info metric and the build log attributes, so bench
// JSON and fleet logs are attributable to an exact build.
func Build() wire.VersionResponse { return buildOnce() }

// BuildAttrs renders the build identity as log attributes.
func BuildAttrs() []Attr {
	b := Build()
	return []Attr{
		String("version", b.Version),
		String("revision", b.Revision),
		String("go_version", b.GoVersion),
	}
}

// RegisterBuildInfo declares the constant <prefix>_build_info metric
// (value 1, build identity as labels) on r — the standard Prometheus
// idiom for joining series against the build that produced them.
func RegisterBuildInfo(r *Registry, prefix string) {
	b := Build()
	r.DeclareSampled(prefix+"_build_info",
		"Build identity of the running binary; constant 1.", KindGaugeFamily)
	r.Sampler(func(emit EmitFunc) {
		emit(prefix+"_build_info", []Label{
			{Name: "version", Value: b.Version},
			{Name: "revision", Value: b.Revision},
			{Name: "go_version", Value: b.GoVersion},
		}, 1)
	})
}
