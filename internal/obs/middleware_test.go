package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/wire"
)

func newTestMiddleware(t *testing.T, next http.Handler) (http.Handler, *Registry, *strings.Builder) {
	t.Helper()
	var buf strings.Builder
	log, err := NewLogger(&buf, Config{Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	h := Middleware(MiddlewareConfig{Logger: log, Metrics: NewHTTPMetrics(reg, "test")}, next)
	return h, reg, &buf
}

func TestMiddlewareGeneratesRequestID(t *testing.T) {
	var seen string
	h, _, buf := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))

	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(seen) {
		t.Errorf("generated id %q not 16 hex chars", seen)
	}
	if got := rec.Header().Get(wire.RequestIDHeader); got != seen {
		t.Errorf("response header %q != ctx id %q", got, seen)
	}
	if !strings.Contains(buf.String(), "request_id="+seen) {
		t.Errorf("access log missing request id:\n%s", buf.String())
	}
}

func TestMiddlewareAdoptsIncomingID(t *testing.T) {
	var seen string
	h, _, _ := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(wire.RequestIDHeader, "upstream-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "upstream-id-42" {
		t.Errorf("adopted id = %q, want upstream-id-42", seen)
	}
	if got := rec.Header().Get(wire.RequestIDHeader); got != "upstream-id-42" {
		t.Errorf("echoed id = %q", got)
	}
}

func TestMiddlewareRejectsMalformedID(t *testing.T) {
	for _, bad := range []string{"", "has space", "ctl\x01char", strings.Repeat("x", 129), "newline\n"} {
		var seen string
		h, _, _ := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen = RequestID(r.Context())
		}))
		req := httptest.NewRequest("GET", "/x", nil)
		if bad != "" {
			req.Header[wire.RequestIDHeader] = []string{bad}
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
		if seen == bad || seen == "" {
			t.Errorf("malformed id %q was adopted (got %q)", bad, seen)
		}
	}
}

func TestMiddlewarePanicContained(t *testing.T) {
	h, reg, buf := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil)) // must not propagate
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(buf.String(), "http handler panic") || !strings.Contains(buf.String(), "boom") {
		t.Errorf("panic not logged:\n%s", buf.String())
	}
	m := scrape(t, reg)
	if m["test_http_panics_total"] != 1 {
		t.Errorf("panics counter = %v, want 1", m["test_http_panics_total"])
	}
	if m[`test_http_requests_total{code="500",method="GET",route="unmatched"}`] != 1 {
		t.Errorf("500 not recorded; metrics: %v", m)
	}
}

func TestMiddlewareAbortHandlerPassesThrough(t *testing.T) {
	h, reg, _ := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if p := recover(); p != http.ErrAbortHandler {
				t.Errorf("recovered %v, want http.ErrAbortHandler to propagate", p)
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	m := scrape(t, reg)
	if m["test_http_panics_total"] != 0 {
		t.Errorf("ErrAbortHandler counted as a contained panic")
	}
	if m["test_http_in_flight_requests"] != 0 {
		t.Errorf("in-flight gauge leaked on abort: %v", m["test_http_in_flight_requests"])
	}
}

func TestMiddlewareRecordsRoutePattern(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets/{id}/rows", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	h, reg, buf := newTestMiddleware(t, mux)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/datasets/abc/rows", nil))

	m := scrape(t, reg)
	key := `test_http_requests_total{code="200",method="POST",route="/v1/datasets/{id}/rows"}`
	if m[key] != 1 {
		t.Errorf("route-labelled counter missing; metrics: %v", m)
	}
	if m[`test_http_request_duration_seconds_count{route="/v1/datasets/{id}/rows"}`] != 1 {
		t.Errorf("duration histogram missing; metrics: %v", m)
	}
	// The access log carries the pattern, not the raw (unbounded) path only.
	if !strings.Contains(buf.String(), "route=/v1/datasets/{id}/rows") {
		t.Errorf("access log missing route pattern:\n%s", buf.String())
	}
}

func TestMiddlewareInFlightDrainsToZero(t *testing.T) {
	h, reg, _ := newTestMiddleware(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for i := 0; i < 5; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}
	m := scrape(t, reg)
	if m["test_http_in_flight_requests"] != 0 {
		t.Errorf("in-flight = %v after all requests done", m["test_http_in_flight_requests"])
	}
}

func scrape(t *testing.T, reg *Registry) map[string]float64 {
	t.Helper()
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, buf.String())
	}
	return SeriesMap(series)
}
