package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	c.Add(-1) // negative deltas are ignored, not applied
	if c.Value() != 5 {
		t.Errorf("counter after Add(-1) = %d, want 5 (monotone)", c.Value())
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if g.Value() != 8 {
		t.Errorf("gauge = %d, want 8", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Errorf("sum = %v, want 55.55", h.Sum())
	}

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 2`,
		`test_lat_seconds_bucket{le="10"} 3`,
		`test_lat_seconds_bucket{le="+Inf"} 4`,
		`test_lat_seconds_sum 55.55`,
		`test_lat_seconds_count 4`,
		`# TYPE test_lat_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecChildIdentityAndLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_req_total", "requests", "route", "code")
	a := cv.With("/v1/discover", "200")
	b := cv.With("/v1/discover", "200")
	if a != b {
		t.Error("With with equal label values returned distinct children")
	}
	a.Add(3)
	cv.With("/v1/discover", "429").Inc()

	hv := r.HistogramVec("test_dur_seconds", "dur", []float64{1}, "route")
	hv.With("/v1/discover").Observe(0.5)

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_req_total{code="200",route="/v1/discover"} 3`,
		`test_req_total{code="429",route="/v1/discover"} 1`,
		`test_dur_seconds_bucket{le="1",route="/v1/discover"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSampledFamilies(t *testing.T) {
	r := NewRegistry()
	r.DeclareSampled("test_sampled_total", "from a snapshot", KindCounterFamily)
	n := 0
	r.Sampler(func(emit EmitFunc) {
		n++
		emit("test_sampled_total", []Label{{Name: "phase", Value: "strip"}}, float64(n * 10))
	})
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_sampled_total{phase="strip"} 10`) {
		t.Errorf("first scrape wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_sampled_total{phase="strip"} 20`) {
		t.Errorf("sampler not re-run per scrape:\n%s", buf.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name should panic")
		}
	}()
	r.Counter("dup_total", "y")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("bad-name", "x")
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_a_total", "a").Add(7)
	r.Gauge("rt_b", "b").Set(-3)
	cv := r.CounterVec("rt_c_total", `has "quotes" and \slashes`, "k")
	cv.With(`va"l\ue` + "\n").Add(2)
	r.Histogram("rt_d_seconds", "d", []float64{0.5}).Observe(0.25)

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseText of own exposition failed: %v\n%s", err, buf.String())
	}
	m := SeriesMap(series)
	checks := map[string]float64{
		`rt_a_total`: 7,
		`rt_b`:       -3,
		`rt_c_total{k="va\"l\\ue\n"}`:   2,
		`rt_d_seconds_bucket{le="0.5"}`: 1,
		`rt_d_seconds_bucket{le="+Inf"}`: 1,
		`rt_d_seconds_sum`:   0.25,
		`rt_d_seconds_count`: 1,
	}
	for key, want := range checks {
		got, ok := m[key]
		if !ok {
			t.Errorf("round-trip lost series %q; have %v", key, keysOf(m))
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestConcurrentInstrumentsRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "r")
	g := r.Gauge("race_gauge", "r")
	h := r.Histogram("race_seconds", "r", DefDurationBuckets)
	cv := r.CounterVec("race_vec_total", "r", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) / 1000)
				cv.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var buf strings.Builder
			if err := r.WriteText(&buf); err != nil {
				t.Errorf("scrape during writes: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8*500 {
		t.Errorf("counter = %d, want %d", c.Value(), 8*500)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8*500 {
		t.Errorf("histogram count = %d, want %d", h.Count(), 8*500)
	}
}
