package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns the opt-in profiling mux: the full net/http/pprof
// surface under /debug/pprof/. It is served on its own listener
// (depminerd -pprof-addr), never on the API address — profiles are an
// operator tool, not part of the public surface, and an unset flag
// leaves them completely off. The file-writing sibling of this is
// cmd/benchmark's -cpuprofile/-memprofile/-trace plumbing; this mux is
// the live-process counterpart (`go tool pprof http://host:port/debug/
// pprof/profile`).
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
