package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Environment variables consulted by ConfigFromEnv. Flags layer on top:
// a flag left at its default keeps the environment's answer, an explicit
// flag wins.
const (
	EnvLogLevel  = "DEPMINER_LOG_LEVEL"  // debug | info | warn | error
	EnvLogFormat = "DEPMINER_LOG_FORMAT" // text | json
)

// Config selects the log level and output format. The zero value means
// "info, text".
type Config struct {
	// Level is one of debug, info, warn, error (case-insensitive).
	// Empty = info.
	Level string
	// Format is text or json. Empty = text.
	Format string
}

// ConfigFromEnv reads the layered environment defaults. Unset variables
// leave the corresponding field empty, so flag defaults show through.
func ConfigFromEnv() Config {
	return Config{
		Level:  os.Getenv(EnvLogLevel),
		Format: os.Getenv(EnvLogFormat),
	}
}

// Layer returns cfg with empty fields filled from fallback — the
// flag-over-env composition: Layer(flags, ConfigFromEnv()).
func (c Config) Layer(fallback Config) Config {
	if c.Level == "" {
		c.Level = fallback.Level
	}
	if c.Format == "" {
		c.Format = fallback.Format
	}
	return c
}

// ParseLevel maps a level name onto its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger builds a logger writing to w under cfg. Invalid level or
// format names are errors, not silent defaults — a fat-fingered
// DEPMINER_LOG_LEVEL should fail loudly at boot, not hide debug output.
func NewLogger(w io.Writer, cfg Config) (*slog.Logger, error) {
	level, err := ParseLevel(cfg.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(cfg.Format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (text, json)", cfg.Format)
}

// Nop returns a logger that discards everything — the guaranteed-quiet
// default for tests and for servers constructed without a logger.
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ctxKey keys the request-scoped attribute set in a context.
type ctxKey struct{}

// AttrKeyRequestID is the canonical key of the per-request correlation
// id, generated (or adopted from the RequestIDHeader) by Middleware and
// propagated across the fleet so a coordinator's log lines join against
// the workers that served its shards.
const AttrKeyRequestID = "request_id"

// ContextWithAttrs layers attrs onto the context's attribute set.
func ContextWithAttrs(ctx context.Context, attrs ...Attr) context.Context {
	return context.WithValue(ctx, ctxKey{}, ContextAttrs(ctx).Merge(attrs...))
}

// ContextWithSet replaces the context's attribute set — used to carry a
// request's attributes onto a detached context (async jobs run under the
// server's base context, not the request's).
func ContextWithSet(ctx context.Context, set Set) context.Context {
	return context.WithValue(ctx, ctxKey{}, set)
}

// ContextAttrs returns the context's attribute set (empty when absent).
func ContextAttrs(ctx context.Context) Set {
	if s, ok := ctx.Value(ctxKey{}).(Set); ok {
		return s
	}
	return Set{}
}

// RequestID returns the context's request id, or "".
func RequestID(ctx context.Context) string {
	a, ok := ContextAttrs(ctx).Get(AttrKeyRequestID)
	if !ok {
		return ""
	}
	return a.AsString()
}

// Logger returns base with the context's attribute set attached, so one
// call site produces lines carrying the request id, dataset, and shard
// attributes without threading them by hand. A nil base means Nop.
func Logger(ctx context.Context, base *slog.Logger) *slog.Logger {
	if base == nil {
		return Nop()
	}
	set := ContextAttrs(ctx)
	if set.Len() == 0 {
		return base
	}
	return base.With(set.Args()...)
}
