package obs

import (
	"context"
	"log/slog"
	"time"
)

// The tracing pillar: spans are structured log events with durations,
// not wire-format traces — depminerd has no collector dependency, and a
// fleet's spans join by request id (the middleware propagates it), so
// `grep request_id=<id>` across coordinator and worker logs reconstructs
// the distributed timeline the way a trace viewer would.

// Span measures one named section of work. End logs the event; a Span
// is single-use and not safe for concurrent End calls.
type Span struct {
	log   *slog.Logger
	name  string
	start time.Time
}

// StartSpan opens a span named name. The event is logged at debug level
// on End, carrying the context's attribute set (request id and friends),
// the given attrs, and the measured duration.
func StartSpan(ctx context.Context, base *slog.Logger, name string, attrs ...Attr) *Span {
	log := Logger(ctx, base)
	if len(attrs) > 0 {
		log = log.With(NewSet(attrs...).Args()...)
	}
	return &Span{log: log, name: name, start: time.Now()}
}

// End closes the span, logging its duration plus any extra attributes
// measured along the way (byte counts, set counts).
func (s *Span) End(extra ...Attr) {
	args := []any{
		slog.String("span", s.name),
		slog.Float64("duration_ms", float64(time.Since(s.start))/float64(time.Millisecond)),
	}
	for _, a := range extra {
		args = append(args, a.Slog())
	}
	s.log.Debug("span", args...)
}

// Event logs a one-shot structured event at debug level with the
// context's attributes attached — the span form for durations that were
// measured elsewhere (e.g. the per-phase timings in Result.Stats).
func Event(ctx context.Context, base *slog.Logger, msg string, attrs ...Attr) {
	log := Logger(ctx, base)
	args := make([]any, 0, len(attrs))
	for _, a := range attrs {
		args = append(args, a.Slog())
	}
	log.Debug(msg, args...)
}
