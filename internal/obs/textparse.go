package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed exposition line. Key is the canonical series
// identity — name plus sorted label signature — the form scripts and
// the loadgen delta report address series by.
type Series struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key renders the canonical series identity: name{a="1",b="2"} with
// labels sorted by name, or the bare name without labels.
func (s Series) Key() string { return s.Name + renderLabels(s.Labels) }

// ParseText parses a Prometheus text exposition (the format WriteText
// produces; the general subset real exporters emit). Comment and blank
// lines are skipped; malformed lines are errors — the CI scrape asserts
// the exposition parses, so leniency would hide bugs.
func ParseText(r io.Reader) ([]Series, error) {
	var out []Series
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Series, error) {
	var s Series
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value on series line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value on series line %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) ([]Label, error) {
	var labels []Label
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		val := strings.Builder{}
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
		rest = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		rest = strings.TrimSpace(rest)
	}
	sort.SliceStable(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return labels, nil
}

// SeriesMap folds parsed series into a key→value map.
func SeriesMap(all []Series) map[string]float64 {
	m := make(map[string]float64, len(all))
	for _, s := range all {
		m[s.Key()] = s.Value
	}
	return m
}
