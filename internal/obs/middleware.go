package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/wire"
)

// HTTPMetrics are the native instruments the middleware records into.
type HTTPMetrics struct {
	// Requests counts finished requests by route pattern, method, and
	// status code.
	Requests *CounterVec
	// Duration is the request-latency histogram by route pattern.
	Duration *HistogramVec
	// InFlight is the number of requests currently being served.
	InFlight *Gauge
	// Panics counts handler panics contained into 500s.
	Panics *Counter
}

// NewHTTPMetrics registers the middleware's instrument set on r under
// the given metric-name prefix (e.g. "depminerd").
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(prefix+"_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"route", "method", "code"),
		Duration: r.HistogramVec(prefix+"_http_request_duration_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		InFlight: r.Gauge(prefix+"_http_in_flight_requests",
			"HTTP requests currently being served."),
		Panics: r.Counter(prefix+"_http_panics_total",
			"Handler panics contained by the middleware into 500 responses."),
	}
}

// MiddlewareConfig configures Middleware. Zero-value fields disable the
// corresponding pillar: nil Logger silences access logs, nil Metrics
// skips recording.
type MiddlewareConfig struct {
	Logger  *slog.Logger
	Metrics *HTTPMetrics
}

// Middleware wraps next with the request-scoped observability stack:
//
//  1. request id: adopt the RequestIDHeader value (generating one when
//     absent or malformed), echo it on the response, and seed the
//     context's attribute set with it so every log line joins;
//  2. panic containment: a panicking handler is logged with its stack
//     and answered with a plain 500 when nothing has been written —
//     http.ErrAbortHandler passes through untouched, because handlers
//     use it deliberately to kill a corrupted stream;
//  3. metrics: in-flight gauge, request counter, and latency histogram
//     keyed by the mux route pattern (bounded cardinality);
//  4. access log: one structured line per request with method, route,
//     status, bytes, and duration. Successful requests log at Debug —
//     at thousands of requests per second a per-request Info line costs
//     double-digit throughput, so the default Info level pays nothing
//     on the happy path. Client errors (4xx) log at Info, server
//     errors (5xx) at Warn: failures are always visible.
func Middleware(cfg MiddlewareConfig, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set(wire.RequestIDHeader, id)
		ctx := ContextWithAttrs(r.Context(), String(AttrKeyRequestID, id))
		r = r.WithContext(ctx)

		if cfg.Metrics != nil {
			cfg.Metrics.InFlight.Inc()
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()

		defer func() {
			p := recover()
			if p == http.ErrAbortHandler {
				// A deliberate connection abort (e.g. a worker killing a
				// corrupted shard stream) — not a contained failure.
				if cfg.Metrics != nil {
					cfg.Metrics.InFlight.Dec()
				}
				panic(p)
			}
			if p != nil {
				if cfg.Metrics != nil {
					cfg.Metrics.Panics.Inc()
				}
				Logger(ctx, cfg.Logger).Error("http handler panic",
					slog.Any("panic", p),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("stack", string(debug.Stack())))
				if !rec.wrote {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
			}
			elapsed := time.Since(start)
			route := routePattern(r)
			if cfg.Metrics != nil {
				cfg.Metrics.InFlight.Dec()
				cfg.Metrics.Requests.With(route, r.Method, strconv.Itoa(rec.status())).Inc()
				cfg.Metrics.Duration.With(route).Observe(elapsed.Seconds())
			}
			lvl := slog.LevelDebug
			switch {
			case rec.status() >= 500:
				lvl = slog.LevelWarn
			case rec.status() >= 400:
				lvl = slog.LevelInfo
			}
			if cfg.Logger != nil && cfg.Logger.Enabled(ctx, lvl) {
				Logger(ctx, cfg.Logger).Log(ctx, lvl, "http request",
					slog.String("method", r.Method),
					slog.String("route", route),
					slog.String("path", r.URL.Path),
					slog.Int("status", rec.status()),
					slog.Int64("bytes", rec.bytes),
					slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
					slog.String("remote", r.RemoteAddr))
			}
		}()

		next.ServeHTTP(rec, r)
	})
}

// requestID adopts the incoming header value when it is usable, and
// mints a fresh id otherwise.
func requestID(r *http.Request) string {
	if v := r.Header.Get(wire.RequestIDHeader); usableRequestID(v) {
		return v
	}
	return NewRequestID()
}

// usableRequestID bounds adopted ids: non-empty, short enough not to be
// a log-injection vector, printable ASCII.
func usableRequestID(v string) bool {
	if v == "" || len(v) > 128 {
		return false
	}
	for i := 0; i < len(v); i++ {
		if v[i] <= ' ' || v[i] > '~' {
			return false
		}
	}
	return true
}

// NewRequestID mints a 16-hex-char random id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; degrade to a time-based id
		// rather than refusing to serve.
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// routePattern returns the bounded-cardinality route label: the mux
// pattern that matched (sans method), or "unmatched" for 404s — never
// the raw URL path, which would explode the label space.
func routePattern(r *http.Request) string {
	p := r.Pattern
	if p == "" {
		return "unmatched"
	}
	if _, rest, ok := strings.Cut(p, " "); ok {
		return rest
	}
	return p
}

// statusRecorder captures status and size while passing everything else
// through — including Flush and trailer writes, which the shard stream
// endpoint depends on.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if !s.wrote {
		s.code = http.StatusOK
		s.wrote = true
	}
	n, err := s.ResponseWriter.Write(p)
	s.bytes += int64(n)
	return n, err
}

func (s *statusRecorder) status() int {
	if !s.wrote {
		return http.StatusOK
	}
	return s.code
}

// Flush forwards to the underlying writer so streamed responses keep
// streaming through the middleware.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the native writer.
func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }
