package agree

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// refAgreeSets is the map-based reference the sorted-run accumulator
// replaced: every couple's agree set deduplicated through a hash set,
// then sorted canonically. Computed directly from the definition of
// ag(r), independent of the partition machinery. Full-schema agree sets
// (duplicate rows) are skipped, matching the package contract.
func refAgreeSets(r *relation.Relation) attrset.Family {
	full := attrset.Universe(r.Arity())
	seen := make(map[attrset.Set]struct{})
	for i := 0; i < r.Rows(); i++ {
		for j := i + 1; j < r.Rows(); j++ {
			if s := r.AgreeSet(i, j); s != full {
				seen[s] = struct{}{}
			}
		}
	}
	out := make(attrset.Family, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	out.Sort()
	return out
}

func randQuickRelation(rng *rand.Rand) *relation.Relation {
	n := 1 + rng.Intn(5)
	rows := rng.Intn(25)
	cols := make([][]int, n)
	for a := range cols {
		cols[a] = make([]int, rows)
		dom := 1 + rng.Intn(4)
		for i := range cols[a] {
			cols[a][i] = rng.Intn(dom)
		}
	}
	r, err := relation.FromCodes(make([]string, n), cols)
	if err != nil {
		panic(err)
	}
	return r
}

// TestQuickSortedDedupMatchesMapReference pits the encode–sort–compact
// agree-set kernels (Algorithms 2 and 3 and the naive scan, across
// worker counts) against the map-based dedup on random relations.
func TestQuickSortedDedupMatchesMapReference(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 80; iter++ {
		r := randQuickRelation(rng)
		want := refAgreeSets(r)
		db := partition.NewDatabase(r)
		for _, workers := range []int{1, 3} {
			got, err := Couples(ctx, db, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Sets.Equal(want) {
				t.Fatalf("Couples(workers=%d) = %v, map reference %v",
					workers, got.Sets.Strings(), want.Strings())
			}
			got, err = Identifiers(ctx, db, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Sets.Equal(want) {
				t.Fatalf("Identifiers(workers=%d) = %v, map reference %v",
					workers, got.Sets.Strings(), want.Strings())
			}
		}
		got, err := Naive(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Sets.Equal(want) {
			t.Fatalf("Naive = %v, map reference %v", got.Sets.Strings(), want.Strings())
		}
	}
}

// TestQuickSetAccumMatchesMapDedup drives the sorted-run accumulator
// itself with random batches (duplicates within and across batches) and
// checks it against a hash-set dedup of the same stream.
func TestQuickSetAccumMatchesMapDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for iter := 0; iter < 100; iter++ {
		var ac setAccum
		seen := make(map[attrset.Set]struct{})
		for batches := rng.Intn(6); batches >= 0; batches-- {
			batch := make([]attrset.Set, rng.Intn(10))
			for i := range batch {
				var s attrset.Set
				for a := 0; a < 6; a++ {
					if rng.Intn(2) == 0 {
						s = s.With(a)
					}
				}
				batch[i] = s
				seen[s] = struct{}{}
			}
			ac.absorb(batch)
		}
		want := make(attrset.Family, 0, len(seen))
		for s := range seen {
			want = append(want, s)
		}
		want.Sort()
		if !attrset.Family(ac.sorted).Equal(want) {
			t.Fatalf("setAccum = %v, map dedup %v",
				attrset.Family(ac.sorted).Strings(), want.Strings())
		}
	}
}
