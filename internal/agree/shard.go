// Shard computation: the agree-set sweep over an explicit couple range,
// the unit a distributed discovery dispatches to workers.
//
// A Plan pins the shardable state both sides must agree on: the couple
// list is generated once (sorted, deduplicated — generateCouples), so a
// [Start,End) index range names the same couples on every node that
// computes it from the same relation bytes; content fingerprints make
// "same bytes" verifiable. ComputeShard sweeps only its range and emits
// the deduplicated agree sets in raw word order (extsort.Compare) — the
// run order — without the canonical sort or the empty-set completion,
// which belong to whoever unions the shards. Finish applies exactly that
// tail once over the merged family.
//
// Byte-identity argument (the distributed analogue of the spill
// contract): the shards are contiguous ranges of one globally sorted
// deduplicated couple list, so their union examines exactly the couples
// the single-node sweep examines, each once; every shard's output is a
// sorted deduplicated run; the k-way dedup merge of sorted runs is
// insensitive to how its inputs were partitioned; and the one canonical
// sort plus empty-set completion then run once, identically. Where shard
// boundaries fall can therefore never change the merged family — and
// hence never the cover.
package agree

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/attrset"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/pool"
)

// Variant selects which sweep a shard runs: Algorithm 2 (couples) or
// Algorithm 3 (identifiers). Every shard of one discovery must use the
// same variant — the coordinator decides degradation globally, from the
// total couple count, so the choice cannot diverge per shard.
type Variant int

const (
	VariantCouples Variant = iota
	VariantIdentifiers
)

// Shard is a half-open couple index range [Start, End) into the plan's
// couple list.
type Shard struct {
	Start, End int
}

// Plan is the shared frame of one sharded agree-set computation: the
// stripped-partition database and its globally sorted deduplicated couple
// list. Coordinator and workers each build a Plan from the same relation
// bytes; equality of the couple count is the cheap structural check that
// they did. The identifier arena is built lazily, once, and shared by
// concurrent ComputeShard calls.
type Plan struct {
	db      *partition.Database
	couples []uint64

	ecOnce sync.Once
	ecOff  []int32
	ec     []uint64
}

// NewPlan builds the couple list for db.
func NewPlan(db *partition.Database) *Plan {
	return &Plan{db: db, couples: generateCouples(db.MaximalClasses())}
}

// Couples returns the total couple count — the space Split partitions.
func (p *Plan) Couples() int { return len(p.couples) }

// Arity returns the schema size of the underlying database.
func (p *Plan) Arity() int { return p.db.Arity() }

// Rows returns the tuple count of the underlying database.
func (p *Plan) Rows() int { return p.db.NumRows }

// Split partitions the couple space into n contiguous near-equal shards
// (never more shards than couples; an empty couple space yields one
// empty shard, so the pipeline shape is uniform).
func (p *Plan) Split(n int) []Shard {
	total := len(p.couples)
	if n < 1 {
		n = 1
	}
	if total == 0 {
		return []Shard{{0, 0}}
	}
	if n > total {
		n = total
	}
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		shards = append(shards, Shard{Start: i * total / n, End: (i + 1) * total / n})
	}
	return shards
}

func (p *Plan) ecIndex() ([]int32, []uint64) {
	p.ecOnce.Do(func() {
		p.ecOff, p.ec = buildECIndex(p.db)
	})
	return p.ecOff, p.ec
}

// ShardResult reports one shard computation.
type ShardResult struct {
	// Sets is the number of agree sets emitted.
	Sets int64
	// Spill counts the shard's own out-of-core activity (all-zero when the
	// shard's accumulation stayed in memory).
	Spill extsort.Stats
}

// ComputeShard sweeps the couples in sh and emits the shard's
// deduplicated agree sets in raw run order (strictly increasing
// extsort.Compare), sequentially from one goroutine. No canonical sort,
// no empty-set completion — see Finish.
//
// Budget contract: ComputeShard does not charge the couple count — the
// caller charges it (the coordinator once for the whole space, a worker
// per request), keeping governed totals identical to single-node runs.
// opts.Budget still governs the sweep's deadline checkpoints and any
// spill bytes.
//
// Errors: a sweep or spill failure is returned before anything is
// emitted, so stream producers can still send a clean error. Only a
// failure during the final merge read-back (or from emit itself) can
// surface after emission started.
func (p *Plan) ComputeShard(ctx context.Context, sh Shard, v Variant, opts Options, emit func(attrset.Set) error) (*ShardResult, error) {
	if sh.Start < 0 || sh.End < sh.Start || sh.End > len(p.couples) {
		return nil, fmt.Errorf("agree: shard [%d,%d) outside couple range [0,%d]", sh.Start, sh.End, len(p.couples))
	}
	sub := p.couples[sh.Start:sh.End]
	workers := pool.Resolve(opts.Workers)
	locals, sp := makeWorkers(workers, opts)
	res := &ShardResult{}
	defer func() {
		if sp != nil {
			res.Spill = sp.Stats()
			sp.Close()
		}
	}()
	full := attrset.Universe(p.db.Arity())

	var err error
	switch v {
	case VariantIdentifiers:
		ecOff, ec := p.ecIndex()
		tasks := (len(sub) + identifierStride - 1) / identifierStride
		err = pool.Run(ctx, workers, tasks, func(taskCtx context.Context, w, t int) error {
			if err := faultinject.Fire(faultinject.AgreeStride); err != nil {
				return err
			}
			if err := opts.Budget.Checkpoint("agree"); err != nil {
				return err
			}
			start := t * identifierStride
			end := min(start+identifierStride, len(sub))
			ws := locals[w]
			batch, err := intersectStride(taskCtx, ec, ecOff, sub[start:end], full, ws.batch[:0])
			ws.batch = batch
			if err != nil {
				return err
			}
			return ws.accum.absorb(batch)
		})
	default:
		chunk := opts.chunkSize()
		tasks := (len(sub) + chunk - 1) / chunk
		err = pool.Run(ctx, workers, tasks, func(_ context.Context, w, t int) error {
			if err := faultinject.Fire(faultinject.AgreeChunk); err != nil {
				return err
			}
			if err := opts.Budget.Checkpoint("agree"); err != nil {
				return err
			}
			start := t * chunk
			end := min(start+chunk, len(sub))
			ws := locals[w]
			return ws.accum.absorb(processChunk(p.db, sub[start:end], full, ws))
		})
	}
	if err != nil {
		return res, fmt.Errorf("agree: shard [%d,%d) sweep: %w", sh.Start, sh.End, err)
	}

	counted := func(s attrset.Set) error {
		res.Sets++
		return emit(s)
	}
	runs := make([][]attrset.Set, 0, len(locals))
	for _, w := range locals {
		if len(w.accum.sorted) > 0 {
			runs = append(runs, w.accum.sorted)
		}
	}
	if sp != nil && sp.Runs() > 0 {
		if err := sp.Merge(runs, counted); err != nil {
			return res, fmt.Errorf("agree: shard [%d,%d) merge: %w", sh.Start, sh.End, err)
		}
		return res, nil
	}
	for _, s := range mergeRuns(runs) {
		if err := counted(s); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Finish turns the raw-order union of the shards' emitted runs into the
// final ag(r): the one canonical sort plus the empty-set completion —
// exactly the tail of the single-node computation, applied once by
// whoever merged the shards.
func (p *Plan) Finish(sets attrset.Family) attrset.Family {
	if sets == nil {
		sets = attrset.Family{}
	}
	sets.Sort()
	return addEmptyIfUncovered(p.db, len(p.couples), sets)
}
