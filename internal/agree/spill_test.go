package agree

// Out-of-core differential tests: spilling is a memory/I-O trade that
// must never change results. The sweep crosses spill thresholds (never /
// every-absorb / effectively-infinite) with worker counts and both
// stripped-partition algorithms, asserting families byte-identical to
// the in-memory reference; the fault sweep arms every extsort injection
// point and asserts either a clean error or a clean governed partial —
// never a silently truncated family.

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"strconv"
	"testing"

	"repro/internal/attrset"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
)

func TestSpillDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		r := randomRelation(t, rng, 2+rng.Intn(5), 20+rng.Intn(80), 1+rng.Intn(4))
		db := partition.NewDatabase(r)
		for _, algo := range []struct {
			name string
			run  func(Options) (*Result, error)
		}{
			{"couples", func(o Options) (*Result, error) { return Couples(context.Background(), db, o) }},
			{"identifiers", func(o Options) (*Result, error) { return Identifiers(context.Background(), db, o) }},
		} {
			ref, err := algo.run(Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, maxBytes := range []int64{0, 1, 4 * extsort.SetBytes, 1 << 40} {
					opts := Options{Workers: workers, MaxAgreeBytes: maxBytes, SpillDir: t.TempDir()}
					got, err := algo.run(opts)
					if err != nil {
						t.Fatalf("%s workers=%d max=%d: %v", algo.name, workers, maxBytes, err)
					}
					if !slices.Equal(got.Sets, ref.Sets) {
						t.Fatalf("%s workers=%d max=%d: family differs from in-memory reference",
							algo.name, workers, maxBytes)
					}
					// ∅ can enter the family via the uncovered-couples
					// completion without any worker absorbing it, so only
					// non-empty sets prove accumulator traffic.
					absorbed := 0
					for _, s := range ref.Sets {
						if !s.IsEmpty() {
							absorbed++
						}
					}
					switch {
					case maxBytes == 0 || maxBytes == 1<<40:
						if got.Spill.RunsSpilled != 0 {
							t.Fatalf("%s workers=%d max=%d: unexpected spills: %+v",
								algo.name, workers, maxBytes, got.Spill)
						}
					case maxBytes == 1 && absorbed > 0:
						// A 1-byte threshold clamps to one record per
						// worker, so every non-empty absorb hits disk.
						if got.Spill.RunsSpilled == 0 {
							t.Fatalf("%s workers=%d max=%d: expected spills, got none (family %d)",
								algo.name, workers, maxBytes, len(ref.Sets))
						}
						if got.Spill.SpilledBytes == 0 || got.Spill.MergedRuns == 0 {
							t.Fatalf("%s workers=%d max=%d: incomplete spill counters: %+v",
								algo.name, workers, maxBytes, got.Spill)
						}
					}
				}
			}
		}
	}
}

// TestSpillFaultInjection arms each extsort injection point under an
// every-absorb threshold: an injected failure must surface as an error
// with no result — not as a truncated family.
func TestSpillFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := randomRelation(t, rng, 4, 80, 2)
	db := partition.NewDatabase(r)
	injected := errors.New("injected spill fault")

	for _, point := range []string{
		faultinject.ExtsortFlush, faultinject.ExtsortRead, faultinject.ExtsortMerge,
	} {
		for _, workers := range []int{1, 4} {
			faultinject.Set(point, faultinject.FailWith(injected))
			opts := Options{Workers: workers, MaxAgreeBytes: 1, SpillDir: t.TempDir()}
			res, err := Identifiers(context.Background(), db, opts)
			faultinject.Reset()
			if !errors.Is(err, injected) {
				t.Fatalf("%s workers=%d: err = %v, want injected", point, workers, err)
			}
			if res != nil {
				t.Fatalf("%s workers=%d: got a result alongside a non-governed error", point, workers)
			}
		}
	}
}

// TestSpillGovernedPartial exhausts the budget via the extsort phase's
// own byte charges: the run must degrade into a governed partial whose
// family is a valid (possibly empty) subset of the full one — clean
// truncation through the guard contract, not silent truncation.
func TestSpillGovernedPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := randomRelation(t, rng, 5, 120, 2)
	db := partition.NewDatabase(r)
	ref, err := Identifiers(context.Background(), db, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Enough budget for the couple charge, not for the spill volume.
	full, err := Identifiers(context.Background(), db, Options{Workers: 1, MaxAgreeBytes: 1, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	limit := full.Couples + int(full.Spill.SpilledBytes)/2 + 1
	b := guard.New(guard.Limits{Units: int64(limit)})
	res, err := Identifiers(context.Background(), db, Options{
		Workers: 1, MaxAgreeBytes: 1, SpillDir: t.TempDir(), Budget: b,
	})
	if !guard.Governed(err) {
		t.Fatalf("err = %v, want governed budget overrun", err)
	}
	if res == nil {
		t.Fatalf("governed overrun returned no partial result")
	}
	for _, s := range res.Sets {
		if !slices.ContainsFunc(ref.Sets, func(x attrset.Set) bool { return x == s }) {
			t.Fatalf("partial family contains set %v absent from the full family", s)
		}
	}
}

// TestMergeAccumsAllocs is the satellite guard on the ping-pong merge:
// folding any number of per-worker runs must cost a constant number of
// allocations (two set buffers, two header arrays, the final copy, and
// the runs header).
func TestMergeAccumsAllocs(t *testing.T) {
	locals := makeRunLocals(16, 2000)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := mergeAccums(locals, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("mergeAccums allocations = %v, want <= 8", allocs)
	}
}

// makeRunLocals builds worker states whose accumulators hold sorted
// deduplicated runs with heavy cross-run overlap.
func makeRunLocals(workers, perRun int) []*workerState {
	rng := rand.New(rand.NewSource(23))
	locals := make([]*workerState, workers)
	for w := range locals {
		run := make([]attrset.Set, 0, perRun)
		for i := 0; i < perRun; i++ {
			var s attrset.Set
			s[0] = uint64(rng.Intn(perRun))
			s[1] = uint64(rng.Intn(4))
			run = append(run, s)
		}
		slices.SortFunc(run, rawCompare)
		run = slices.Compact(run)
		locals[w] = &workerState{accum: setAccum{sorted: run}}
	}
	return locals
}

func BenchmarkMergeAccums(b *testing.B) {
	for _, workers := range []int{4, 16} {
		locals := makeRunLocals(workers, 20000)
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mergeAccums(locals, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
