package agree

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/partition"
	"repro/internal/relation"
)

func mustSets(t *testing.T, specs ...string) attrset.Family {
	t.Helper()
	out := make(attrset.Family, 0, len(specs))
	for _, s := range specs {
		set, ok := attrset.Parse(s)
		if !ok {
			t.Fatalf("bad spec %q", s)
		}
		out = append(out, set)
	}
	return out
}

// Paper Example 5/8: ag(r) = {∅, A, BDE, CE, E}.
func TestPaperExampleAllAlgorithms(t *testing.T) {
	r := relation.PaperExample()
	db := partition.NewDatabase(r)
	want := mustSets(t, "∅", "A", "BDE", "CE", "E")

	algos := map[string]func() (*Result, error){
		"naive":   func() (*Result, error) { return Naive(context.Background(), r) },
		"couples": func() (*Result, error) { return Couples(context.Background(), db, Options{}) },
		"ids":     func() (*Result, error) { return Identifiers(context.Background(), db, Options{}) },
		"default": func() (*Result, error) { return FromRelation(context.Background(), r) },
	}
	for name, fn := range algos {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Sets.Equal(want) {
			t.Errorf("%s: ag(r) = %v, want %v", name, res.Sets.Strings(), want.Strings())
		}
	}
}

func TestPaperExampleCoupleCount(t *testing.T) {
	// Example 5: MC generates exactly 6 couples:
	// (1,2),(1,6),(2,7),(3,4),(3,5),(4,5).
	db := partition.NewDatabase(relation.PaperExample())
	res, err := Couples(context.Background(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Couples != 6 {
		t.Errorf("Couples = %d, want 6", res.Couples)
	}
	// Naive examines all 21 couples of the 7 tuples.
	naive, err := Naive(context.Background(), relation.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if naive.Couples != 21 {
		t.Errorf("naive couples = %d, want 21", naive.Couples)
	}
}

func TestChunkingMatchesUnchunked(t *testing.T) {
	db := partition.NewDatabase(relation.PaperExample())
	whole, err := Couples(context.Background(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 2, 3, 5, 7, 100} {
		res, err := Couples(context.Background(), db, Options{ChunkSize: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sets.Equal(whole.Sets) {
			t.Errorf("chunk=%d: %v != %v", chunk, res.Sets.Strings(), whole.Sets.Strings())
		}
		wantChunks := (res.Couples + chunk - 1) / chunk
		if res.Chunks != wantChunks {
			t.Errorf("chunk=%d: Chunks = %d, want %d", chunk, res.Chunks, wantChunks)
		}
	}
}

func TestEmptySetOnlyWhenUncovered(t *testing.T) {
	// Two tuples disagreeing everywhere: ag(r) = {∅}.
	r, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	for name, res := range runAll(t, r, db) {
		if !res.Sets.Equal(attrset.Family{attrset.Empty()}) {
			t.Errorf("%s: ag = %v, want {∅}", name, res.Sets.Strings())
		}
	}

	// Two tuples agreeing on b: ag(r) = {B} — no ∅.
	r2, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}, {"2", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	db2 := partition.NewDatabase(r2)
	for name, res := range runAll(t, r2, db2) {
		if !res.Sets.Equal(attrset.Family{attrset.Single(1)}) {
			t.Errorf("%s: ag = %v, want {B}", name, res.Sets.Strings())
		}
	}
}

func TestDegenerateRelations(t *testing.T) {
	// Empty relation and single tuple: no couples, ag(r) = {}.
	for _, rows := range [][][]string{{}, {{"1", "x"}}} {
		r, err := relation.FromRows([]string{"a", "b"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		db := partition.NewDatabase(r)
		for name, res := range runAll(t, r, db) {
			if len(res.Sets) != 0 {
				t.Errorf("%s rows=%d: ag = %v, want empty", name, len(rows), res.Sets.Strings())
			}
		}
	}
}

// TestDuplicateTuplesCollapse pins the set semantics of duplicate rows
// (the paper defines a relation as a *set* of tuples): a couple of
// identical tuples never contributes the full schema R to ag(r), in any
// of the three algorithms.
func TestDuplicateTuplesCollapse(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"}, [][]string{{"1", "x"}, {"1", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	for name, res := range runAll(t, r, db) {
		if len(res.Sets) != 0 {
			t.Errorf("%s: ag = %v, want empty (duplicates collapse)", name, res.Sets.Strings())
		}
	}
}

// TestDuplicateRowsMatchDeduplicated is the regression test for duplicate
// handling: on a relation with duplicate rows, all three algorithms must
// produce exactly the ag(r) of the deduplicated relation.
func TestDuplicateRowsMatchDeduplicated(t *testing.T) {
	rows := [][]string{
		{"1", "x", "p"},
		{"1", "x", "p"}, // duplicate of tuple 0
		{"1", "y", "q"},
		{"2", "y", "q"},
		{"2", "y", "q"}, // duplicate of tuple 3
		{"3", "z", "p"},
	}
	r, err := relation.FromRows([]string{"a", "b", "c"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	dedup := r.Deduplicate()
	want, err := Naive(context.Background(), dedup)
	if err != nil {
		t.Fatal(err)
	}
	if full := attrset.Universe(3); want.Sets.Contains(full) {
		t.Fatalf("dedup baseline still contains the full schema: %v", want.Sets.Strings())
	}
	db := partition.NewDatabase(r)
	for name, res := range runAll(t, r, db) {
		if !res.Sets.Equal(want.Sets) {
			t.Errorf("%s on duplicates: ag = %v, want %v (ag of deduplicated relation)",
				name, res.Sets.Strings(), want.Sets.Strings())
		}
	}
}

func runAll(t *testing.T, r *relation.Relation, db *partition.Database) map[string]*Result {
	t.Helper()
	out := map[string]*Result{}
	var err error
	if out["naive"], err = Naive(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	if out["couples"], err = Couples(context.Background(), db, Options{}); err != nil {
		t.Fatal(err)
	}
	if out["ids"], err = Identifiers(context.Background(), db, Options{}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLemma1And2Property cross-checks the three algorithms on random
// relations: the stripped-partition characterisations (Lemmas 1 and 2) must
// reproduce the naive ag(r) exactly.
func TestLemma1And2Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(6)
		rows := rng.Intn(25)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(6)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		db := partition.NewDatabase(r)
		res := runAll(t, r, db)
		if !res["couples"].Sets.Equal(res["naive"].Sets) {
			t.Fatalf("Lemma 1 violated (iter %d): couples=%v naive=%v",
				iter, res["couples"].Sets.Strings(), res["naive"].Sets.Strings())
		}
		if !res["ids"].Sets.Equal(res["naive"].Sets) {
			t.Fatalf("Lemma 2 violated (iter %d): ids=%v naive=%v",
				iter, res["ids"].Sets.Strings(), res["naive"].Sets.Strings())
		}
		if res["couples"].Couples != res["ids"].Couples {
			t.Fatalf("couple counts differ: %d vs %d",
				res["couples"].Couples, res["ids"].Couples)
		}
		if res["couples"].Couples > res["naive"].Couples {
			t.Fatalf("MC couples (%d) exceed naive couples (%d)",
				res["couples"].Couples, res["naive"].Couples)
		}
	}
}

func TestCancellation(t *testing.T) {
	// Build a relation large enough that cancellation is observed.
	rows := 600
	cols := [][]int{make([]int, rows), make([]int, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i] = i % 2 // two huge classes → ~90k couples
		cols[1][i] = i
	}
	r, err := relation.FromCodes([]string{"a", "b"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Naive(ctx, r); err == nil {
		t.Error("naive should observe cancellation")
	}
	if _, err := Couples(ctx, db, Options{ChunkSize: 10}); err == nil {
		t.Error("couples should observe cancellation")
	}
	if _, err := Identifiers(ctx, db, Options{}); err == nil {
		t.Error("identifiers should observe cancellation")
	}
}

func TestAgreeSetsNeverContainFullSchemaWithoutDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(4)
		rows := 2 + rng.Intn(20)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(3)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		res, err := FromRelation(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sets.Contains(r.Schema()) {
			t.Fatalf("deduplicated relation produced R as agree set")
		}
	}
}
