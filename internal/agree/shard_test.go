package agree

// Shard differential tests: where shard boundaries fall must never
// change the merged family. ComputeShard over any contiguous partition
// of the couple space, merged and Finished, must be byte-identical to
// the single-node sweep — for both variants, every shard count, and
// every spill threshold (the distributed analogue of the spill
// contract in spill_test.go).

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/attrset"
	"repro/internal/extsort"
	"repro/internal/partition"
	"repro/internal/relation"
)

func TestSplitCoversCoupleSpace(t *testing.T) {
	r := relation.PaperExample()
	plan := NewPlan(partition.NewDatabase(r))
	total := plan.Couples()
	if total == 0 {
		t.Fatal("paper example has no couples")
	}
	for _, n := range []int{1, 2, 3, total, total + 5, 0, -1} {
		shards := plan.Split(n)
		next := 0
		for _, sh := range shards {
			if sh.Start != next || sh.End < sh.Start {
				t.Fatalf("Split(%d): shard [%d,%d) breaks contiguity at %d", n, sh.Start, sh.End, next)
			}
			next = sh.End
		}
		if next != total {
			t.Fatalf("Split(%d): shards cover [0,%d), want [0,%d)", n, next, total)
		}
		if n > 0 && n <= total && len(shards) != n {
			t.Fatalf("Split(%d) produced %d shards", n, len(shards))
		}
	}

	// An empty couple space still yields one well-formed empty shard.
	single, err := relation.FromCodes([]string{"a"}, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	empty := NewPlan(partition.NewDatabase(single))
	if shards := empty.Split(4); len(shards) != 1 || shards[0] != (Shard{0, 0}) {
		t.Fatalf("empty couple space Split = %v, want [{0 0}]", shards)
	}
}

func TestComputeShardRangeValidation(t *testing.T) {
	plan := NewPlan(partition.NewDatabase(relation.PaperExample()))
	for _, sh := range []Shard{{-1, 0}, {2, 1}, {0, plan.Couples() + 1}} {
		if _, err := plan.ComputeShard(context.Background(), sh, VariantCouples, Options{}, func(attrset.Set) error { return nil }); err == nil {
			t.Fatalf("ComputeShard(%v) accepted an invalid range", sh)
		}
	}
}

// shardedFamily computes the family by splitting the plan into n shards,
// collecting each shard's emitted run, merging through a spiller (the
// coordinator's merge shape), and Finishing once.
func shardedFamily(t *testing.T, plan *Plan, n int, v Variant, opts Options) attrset.Family {
	t.Helper()
	var runs [][]attrset.Set
	for _, sh := range plan.Split(n) {
		var run []attrset.Set
		res, err := plan.ComputeShard(context.Background(), sh, v, opts, func(s attrset.Set) error {
			run = append(run, s)
			return nil
		})
		if err != nil {
			t.Fatalf("ComputeShard(%v): %v", sh, err)
		}
		if res.Sets != int64(len(run)) {
			t.Fatalf("ComputeShard(%v): Sets=%d, emitted %d", sh, res.Sets, len(run))
		}
		for i := 1; i < len(run); i++ {
			if extsort.Compare(run[i-1], run[i]) >= 0 {
				t.Fatalf("ComputeShard(%v): emitted run not strictly sorted at %d", sh, i)
			}
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	sp := extsort.NewSpiller(t.TempDir(), nil)
	defer sp.Close()
	var merged attrset.Family
	if err := sp.Merge(runs, func(s attrset.Set) error {
		merged = append(merged, s)
		return nil
	}); err != nil {
		t.Fatalf("merging shard runs: %v", err)
	}
	return plan.Finish(merged)
}

func TestShardDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rels := []*relation.Relation{relation.PaperExample()}
	for iter := 0; iter < 6; iter++ {
		rels = append(rels, randomRelation(t, rng, 2+rng.Intn(5), 20+rng.Intn(60), 1+rng.Intn(4)))
	}
	for ri, r := range rels {
		db := partition.NewDatabase(r)
		for _, v := range []struct {
			name    string
			variant Variant
			ref     func(Options) (*Result, error)
		}{
			{"couples", VariantCouples, func(o Options) (*Result, error) { return Couples(context.Background(), db, o) }},
			{"identifiers", VariantIdentifiers, func(o Options) (*Result, error) { return Identifiers(context.Background(), db, o) }},
		} {
			ref, err := v.ref(Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			plan := NewPlan(db)
			if plan.Couples() != ref.Couples {
				t.Fatalf("rel %d %s: plan couples %d, reference examined %d", ri, v.name, plan.Couples(), ref.Couples)
			}
			for _, n := range []int{1, 2, 4, 7} {
				for _, maxBytes := range []int64{0, 1} {
					opts := Options{Workers: 2, MaxAgreeBytes: maxBytes, SpillDir: t.TempDir()}
					got := shardedFamily(t, plan, n, v.variant, opts)
					if !slices.Equal(got, ref.Sets) {
						t.Fatalf("rel %d %s shards=%d max=%d: family differs from single-node reference",
							ri, v.name, n, maxBytes)
					}
				}
			}
		}
	}
}

// TestShardFamiliesDisjointUnion pins the dedup-merge insensitivity the
// byte-identity argument leans on: each couple lands in exactly one
// shard, so the multiset union of shard runs (before dedup) can only
// duplicate sets across shards, never within one — and the k-way dedup
// merge collapses exactly those.
func TestShardFamiliesDisjointUnion(t *testing.T) {
	r := relation.PaperExample()
	plan := NewPlan(partition.NewDatabase(r))
	ref, err := Couples(context.Background(), partition.NewDatabase(r), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[attrset.Set]bool)
	for _, sh := range plan.Split(3) {
		perShard := make(map[attrset.Set]bool)
		if _, err := plan.ComputeShard(context.Background(), sh, VariantCouples, Options{}, func(s attrset.Set) error {
			if perShard[s] {
				t.Fatalf("shard %v emitted a duplicate", sh)
			}
			perShard[s] = true
			seen[s] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range ref.Sets {
		if !s.IsEmpty() && !seen[s] {
			t.Fatalf("reference set %v missing from every shard", s)
		}
	}
}
