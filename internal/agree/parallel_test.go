package agree

// Parallel-path tests: byte-identical results for any worker count, and
// prompt, leak-free unwinding when the context is cancelled while workers
// are in flight. The CI race job runs these with -race -run Parallel.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/relation"
)

// randomRelation builds a seeded random relation with enough value
// collisions to produce non-trivial agree sets.
func randomRelation(t testing.TB, rng *rand.Rand, attrs, rows, domain int) *relation.Relation {
	t.Helper()
	cols := make([][]int, attrs)
	for a := range cols {
		cols[a] = make([]int, rows)
		for i := range cols[a] {
			cols[a][i] = rng.Intn(domain)
		}
	}
	r, err := relation.FromCodes(make([]string, attrs), cols)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestParallelMatchesSequential pins the determinism guarantee: for both
// stripped-partition algorithms, every worker count yields a Result
// identical to the sequential reference (Workers=1), including the
// Couples and Chunks counters.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		r := randomRelation(t, rng, 2+rng.Intn(5), 5+rng.Intn(60), 1+rng.Intn(5))
		db := partition.NewDatabase(r)
		chunk := 1 + rng.Intn(64)
		for _, algo := range []struct {
			name string
			run  func(Options) (*Result, error)
		}{
			{"couples", func(o Options) (*Result, error) { return Couples(context.Background(), db, o) }},
			{"identifiers", func(o Options) (*Result, error) { return Identifiers(context.Background(), db, o) }},
		} {
			seq, err := algo.run(Options{ChunkSize: chunk, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := algo.run(Options{ChunkSize: chunk, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !par.Sets.Equal(seq.Sets) {
					t.Fatalf("iter %d %s workers=%d: ag = %v, sequential = %v",
						iter, algo.name, workers, par.Sets.Strings(), seq.Sets.Strings())
				}
				if par.Couples != seq.Couples || par.Chunks != seq.Chunks {
					t.Fatalf("iter %d %s workers=%d: counters (%d,%d) differ from sequential (%d,%d)",
						iter, algo.name, workers, par.Couples, par.Chunks, seq.Couples, seq.Chunks)
				}
			}
		}
	}
}

// cancellationWorkload is a relation whose couple list is large enough
// that the sweep cannot finish before the test observes in-flight workers
// and cancels: `rows` tuples with 8-value columns give ~rows²/16 MC
// couples, and `attrs` scales the per-couple work of the identifier
// algorithm (ec-list length).
func cancellationWorkload(t testing.TB, attrs, rows int) *partition.Database {
	t.Helper()
	cols := make([][]int, attrs)
	for a := range cols {
		cols[a] = make([]int, rows)
		for i := range cols[a] {
			cols[a][i] = (i + a) % 8
		}
	}
	r, err := relation.FromCodes(make([]string, len(cols)), cols)
	if err != nil {
		t.Fatal(err)
	}
	return partition.NewDatabase(r)
}

// runCancelledMidFlight starts fn under a cancelable context, waits until
// the worker goroutines are observably in flight, cancels, and asserts
// the computation unwinds promptly with a wrapped context.Canceled and
// without leaking goroutines.
func runCancelledMidFlight(t *testing.T, fn func(context.Context) error) {
	t.Helper()
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fn(ctx) }()

	// Wait for the pool workers to spawn (the +1 is the goroutine above).
	deadline := time.Now().Add(30 * time.Second)
	for runtime.NumGoroutine() < base+3 {
		select {
		case err := <-done:
			t.Fatalf("computation finished before workers were observed (err=%v); enlarge the workload", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never spawned")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not unwind the computation: deadlock or stuck workers")
	}

	// All workers must exit: poll until the goroutine count returns to
	// the baseline (with slack for runtime-internal goroutines).
	deadline = time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelCouplesCancellationMidFlight cancels the chunked couple
// sweep while its workers are running. ChunkSize 1 maximises dispatch
// points so the cancellation must be noticed between chunks.
func TestParallelCouplesCancellationMidFlight(t *testing.T) {
	db := cancellationWorkload(t, 3, 4000)
	runCancelledMidFlight(t, func(ctx context.Context) error {
		_, err := Couples(ctx, db, Options{ChunkSize: 1, Workers: 4})
		return err
	})
}

// TestParallelIdentifiersCancellationMidFlight does the same for the
// identifier-intersection algorithm, whose workers poll the context
// inside their stride loops.
func TestParallelIdentifiersCancellationMidFlight(t *testing.T) {
	db := cancellationWorkload(t, 24, 6000)
	runCancelledMidFlight(t, func(ctx context.Context) error {
		_, err := Identifiers(ctx, db, Options{Workers: 4})
		return err
	})
}

// TestParallelChunkBoundaries sweeps worker × chunk-size combinations on
// one relation, guarding the range arithmetic of the chunk scheduler.
func TestParallelChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRelation(t, rng, 4, 40, 3)
	db := partition.NewDatabase(r)
	want, err := Couples(context.Background(), db, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 2, 3, 7, 64, 1 << 20} {
		for _, workers := range []int{2, 5} {
			t.Run("chunk="+strconv.Itoa(chunk)+"/workers="+strconv.Itoa(workers), func(t *testing.T) {
				res, err := Couples(context.Background(), db, Options{ChunkSize: chunk, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Sets.Equal(want.Sets) {
					t.Errorf("ag = %v, want %v", res.Sets.Strings(), want.Sets.Strings())
				}
			})
		}
	}
}
