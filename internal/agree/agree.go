// Package agree computes agree sets ag(r) from stripped partition
// databases (paper §3.1).
//
// The agree set of two tuples is ag(ti,tj) = {A ∈ R | ti[A] = tj[A]};
// ag(r) collects them over all tuple couples. Three computations are
// provided:
//
//   - Naive: direct O(n·p²) pairwise scan of the relation — the baseline
//     the paper's introduction rules out for large relations.
//     (It remains strictly sequential: the reference implementation.)
//   - Couples (Algorithm 2 / "Dep-Miner"): generate the tuple couples of
//     the maximal equivalence classes MC (Lemma 1), then sweep the
//     stripped partitions once, adding attribute A to ag(t,t') whenever
//     both tuples share a class of π̂_A. Couples are processed in chunks of
//     at most ChunkSize to bound memory, exactly like the paper's
//     "computing agree sets as soon as a fixed number of couples was
//     generated".
//   - Identifiers (Algorithm 3 / "Dep-Miner 2"): build, per tuple, the
//     list ec(t) of equivalence-class identifiers containing t; then
//     ag(ti,tj) is read off the intersection ec(ti) ∩ ec(tj) (Lemma 2).
//
// All three return the deduplicated set family ag(r); the empty agree set
// is included when some couple of tuples disagrees everywhere, matching
// the paper's running example where ag(r) = {∅, A, BDE, CE, E}.
//
// The paper defines a relation as a *set* of tuples, so all three
// algorithms apply set semantics to duplicate rows: a couple of identical
// tuples (which would agree on the full schema R) contributes nothing to
// ag(r), exactly as if the relation had been deduplicated first.
//
// Couples and Identifiers parallelise across Options.Workers goroutines
// by partitioning the couple list; every worker accumulates into a
// private set map and the merged family is emitted in canonical order, so
// results are byte-identical for any worker count.
package agree

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/relation"
)

// DefaultChunkSize is the default bound on couples materialised at once by
// the couples algorithm. The paper uses "a threshold (associated to the
// number of tuples)"; 1<<20 couples ≈ 16 MB of couple state.
const DefaultChunkSize = 1 << 20

// ErrTooManyCouples reports that Algorithm 2's couple space exceeds the
// configured degradation threshold — the signal on which core.Discover
// falls back to Algorithm 3 (the paper's own remedy for correlated
// relations, whose couple blow-up §5.2 demonstrates).
var ErrTooManyCouples = errors.New("agree: couple count exceeds threshold")

// CoupleOverflowError carries the couple count that crossed the
// Options.MaxCouples threshold. It wraps ErrTooManyCouples.
type CoupleOverflowError struct {
	Couples, Max int
}

func (e *CoupleOverflowError) Error() string {
	return fmt.Sprintf("agree: %d couples exceed the %d-couple threshold", e.Couples, e.Max)
}

func (e *CoupleOverflowError) Unwrap() error { return ErrTooManyCouples }

// Result is the outcome of an agree-set computation.
type Result struct {
	// Sets is ag(r) deduplicated, in canonical order. It never contains
	// the full schema R: two distinct tuples cannot agree everywhere, and
	// couples of duplicate rows are collapsed by all three algorithms
	// (set semantics — the paper defines a relation as a set of tuples).
	Sets attrset.Family
	// Couples is the number of tuple couples examined.
	Couples int
	// Chunks is the number of chunk passes performed (couples algorithm;
	// 1 otherwise).
	Chunks int
}

// Naive computes ag(r) by comparing every couple of distinct tuples
// directly on the relation: the O(n·p²) baseline. Couples of duplicate
// tuples (agree set = full schema R) are skipped, so duplicate rows yield
// the same ag(r) as the deduplicated relation — matching the partition
// algorithms, which apply the same set semantics.
func Naive(ctx context.Context, r *relation.Relation) (*Result, error) {
	seen := make(map[attrset.Set]struct{})
	res := &Result{Chunks: 1}
	full := attrset.Universe(r.Arity())
	for i := 0; i < r.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agree: naive scan cancelled: %w", err)
		}
		for j := i + 1; j < r.Rows(); j++ {
			res.Couples++
			if s := r.AgreeSet(i, j); s != full {
				seen[s] = struct{}{}
			}
		}
	}
	res.Sets = familyOf(seen)
	return res, nil
}

// Options configure the stripped-partition algorithms.
type Options struct {
	// ChunkSize bounds the couples held in memory at once by Couples.
	// Zero means DefaultChunkSize.
	ChunkSize int
	// Workers is the worker-pool width for the couple sweep: 0 means
	// runtime.GOMAXPROCS(0), 1 the sequential reference path. Results are
	// byte-identical for every value.
	Workers int
	// MaxCouples makes Couples refuse inputs whose couple space exceeds
	// the threshold, returning a *CoupleOverflowError before any sweep
	// work — the degradation signal core.Discover reacts to. 0 disables.
	MaxCouples int
	// Budget governs the computation: the couple count and the agree
	// sets produced are charged against it, and each chunk/stride passes
	// a deadline checkpoint. On overrun the partial Result accumulated so
	// far is returned together with the guard error. nil = ungoverned.
	Budget *guard.Budget
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// couple is an ordered pair of tuple ids (t < u).
type couple struct{ t, u int }

// generateCouples lists the distinct couples of the classes of MC. MC
// classes may overlap (two maximal classes of different attributes can
// share tuples), so the same couple can occur in several classes;
// duplicates are removed by an encode–sort–compact pass, which profiles
// far ahead of hash-set deduplication at benchmark scale.
func generateCouples(mc [][]int) []couple {
	total := 0
	for _, c := range mc {
		total += len(c) * (len(c) - 1) / 2
	}
	enc := make([]uint64, 0, total)
	for _, c := range mc {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				enc = append(enc, uint64(c[i])<<32|uint64(uint32(c[j])))
			}
		}
	}
	sort.Slice(enc, func(i, j int) bool { return enc[i] < enc[j] })
	out := make([]couple, 0, len(enc))
	var prev uint64
	for i, e := range enc {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		out = append(out, couple{int(e >> 32), int(uint32(e))})
	}
	return out
}

// Couples computes ag(r) with Algorithm 2 (AGREE_SET): couples from MC,
// swept against every stripped partition, chunked to bound memory. Chunks
// are independent (each sweeps the partitions for its own couples only),
// so they are distributed over Options.Workers goroutines; per-worker set
// maps are merged and emitted in canonical order, making the result
// independent of worker count and scheduling.
func Couples(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Couples: len(couples)}
	if opts.MaxCouples > 0 && len(couples) > opts.MaxCouples {
		return nil, &CoupleOverflowError{Couples: len(couples), Max: opts.MaxCouples}
	}

	chunk := opts.chunkSize()
	nChunks := (len(couples) + chunk - 1) / chunk
	res.Chunks = nChunks
	if nChunks == 0 {
		res.Chunks = 1
	}
	if err := opts.Budget.Charge("agree", len(couples)); err != nil {
		return res, err
	}

	workers := pool.Resolve(opts.Workers)
	locals := make([]map[attrset.Set]struct{}, workers)
	for w := range locals {
		locals[w] = make(map[attrset.Set]struct{})
	}
	full := attrset.Universe(db.Arity())
	err := pool.Run(ctx, workers, nChunks, func(_ context.Context, w, t int) error {
		if err := faultinject.Fire(faultinject.AgreeChunk); err != nil {
			return err
		}
		if err := opts.Budget.Checkpoint("agree"); err != nil {
			return err
		}
		start := t * chunk
		end := start + chunk
		if end > len(couples) {
			end = len(couples)
		}
		processChunk(db, couples[start:end], full, locals[w])
		return nil
	})
	if err != nil {
		return governedPartial(res, locals, err, "couples scan")
	}
	seen := mergeLocals(locals)
	addEmptyIfUncovered(db, len(couples), seen)
	res.Sets = familyOf(seen)
	if err := opts.Budget.Charge("agree", len(res.Sets)); err != nil {
		return res, err
	}
	return res, nil
}

// governedPartial classifies a sweep failure: governed outcomes (budget,
// deadline, contained panic) keep the agree sets the workers accumulated
// before the overrun — pool.Run has joined every worker by the time it
// returns, so the locals are safe to merge — while cancellations and
// ordinary errors discard the result as before. The empty-set completion
// is skipped on the partial path: it is only meaningful for a full sweep.
func governedPartial(res *Result, locals []map[attrset.Set]struct{}, err error, what string) (*Result, error) {
	if !guard.Governed(err) {
		return nil, fmt.Errorf("agree: %s cancelled: %w", what, err)
	}
	res.Sets = familyOf(mergeLocals(locals))
	return res, err
}

// addEmptyIfUncovered inserts the empty agree set when some couple of
// tuples lies in no MC class, i.e. disagrees on every attribute. Couples
// inside MC classes always share at least the attribute whose partition
// produced the class, so ∅ can only arise this way. (The paper's Lemma 1
// elides this case, but its running example lists ∅ ∈ ag(r), and omitting
// it would make CMAX_SET wrongly emit ∅ → A for non-constant columns when
// no non-empty agree set avoids A.)
func addEmptyIfUncovered(db *partition.Database, covered int, seen map[attrset.Set]struct{}) {
	total := db.NumRows * (db.NumRows - 1) / 2
	if covered < total {
		seen[attrset.Set{}] = struct{}{}
	}
}

// processChunk runs lines 10–21 of Algorithm 2 for one chunk of couples:
// for each stripped partition and each of its classes, add the attribute
// to the agree set of every chunk couple lying inside the class. Agree
// sets equal to full (the whole schema, i.e. duplicate-tuple couples) are
// dropped: set semantics. It reads db and writes only chunk-local state
// plus seen, so concurrent calls are safe on disjoint seen maps.
//
// To keep the per-class couple lookup sub-quadratic, couples are indexed by
// their first tuple: for a class c and each t ∈ c, only couples starting at
// t are probed, and membership of the partner is tested with a per-class
// mark table — an indexing refinement of the paper's "if t ∈ c and t' ∈ c".
func processChunk(db *partition.Database, chunk []couple, full attrset.Set, seen map[attrset.Set]struct{}) {
	// ag state for the chunk.
	ag := make([]attrset.Set, len(chunk))
	// Index couples by first tuple: byFirst[t] slices into couple
	// indices. chunk arrives sorted by (t, u) from generateCouples, so a
	// counting layout avoids per-tuple allocations.
	counts := make([]int32, db.NumRows+1)
	for _, cp := range chunk {
		counts[cp.t+1]++
	}
	for t := 0; t < db.NumRows; t++ {
		counts[t+1] += counts[t]
	}
	inClass := make([]bool, db.NumRows)
	for a, p := range db.Attr {
		for _, cls := range p.Classes {
			for _, t := range cls {
				inClass[t] = true
			}
			for _, t := range cls {
				for ci := counts[t]; ci < counts[t+1]; ci++ {
					if inClass[chunk[ci].u] {
						ag[ci].Add(a)
					}
				}
			}
			for _, t := range cls {
				inClass[t] = false
			}
		}
	}
	for i := range ag {
		if ag[i] != full {
			seen[ag[i]] = struct{}{}
		}
	}
}

// mergeLocals folds per-worker set maps into the first one. Map union is
// order-insensitive, so the merged contents do not depend on how couples
// were distributed across workers.
func mergeLocals(locals []map[attrset.Set]struct{}) map[attrset.Set]struct{} {
	seen := locals[0]
	for _, l := range locals[1:] {
		for s := range l {
			seen[s] = struct{}{}
		}
	}
	return seen
}

// identifierStride is the number of couples one parallel Identifiers task
// intersects: large enough to amortise dispatch, small enough to balance
// load and keep cancellation latency low.
const identifierStride = 1 << 13

// Identifiers computes ag(r) with Algorithm 3 (AGREE_SET 2): per-tuple
// equivalence-class identifier lists, intersected per MC couple (Lemma 2).
// It is the "Dep-Miner 2" variant of the evaluation, more efficient when
// equivalence classes are large or numerous. The couple list is split
// into fixed strides distributed over Options.Workers goroutines, with
// per-worker set maps merged in canonical order (deterministic output for
// any worker count).
func Identifiers(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	// ecAttr[t] lists, in increasing attribute order, the attributes A for
	// which t lies in some class of π̂_A, and ecID[t] the class index
	// within that partition. Intersecting two tuples' lists by attribute
	// and comparing class ids implements (A,i) ∈ ec(t) ∩ ec(t').
	ecAttr := make([][]int32, db.NumRows)
	ecID := make([][]int32, db.NumRows)
	for a, p := range db.Attr {
		for i, cls := range p.Classes {
			for _, t := range cls {
				ecAttr[t] = append(ecAttr[t], int32(a))
				ecID[t] = append(ecID[t], int32(i))
			}
		}
	}

	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Chunks: 1, Couples: len(couples)}
	if err := opts.Budget.Charge("agree", len(couples)); err != nil {
		return res, err
	}

	workers := pool.Resolve(opts.Workers)
	locals := make([]map[attrset.Set]struct{}, workers)
	for w := range locals {
		locals[w] = make(map[attrset.Set]struct{})
	}
	full := attrset.Universe(db.Arity())
	tasks := (len(couples) + identifierStride - 1) / identifierStride
	err := pool.Run(ctx, workers, tasks, func(taskCtx context.Context, w, t int) error {
		if err := faultinject.Fire(faultinject.AgreeStride); err != nil {
			return err
		}
		if err := opts.Budget.Checkpoint("agree"); err != nil {
			return err
		}
		start := t * identifierStride
		end := start + identifierStride
		if end > len(couples) {
			end = len(couples)
		}
		seen := locals[w]
		for i, cp := range couples[start:end] {
			if i&0xFFF == 0 {
				if err := taskCtx.Err(); err != nil {
					return err
				}
			}
			var s attrset.Set
			at, it := ecAttr[cp.t], ecID[cp.t]
			au, iu := ecAttr[cp.u], ecID[cp.u]
			x, y := 0, 0
			for x < len(at) && y < len(au) {
				switch {
				case at[x] < au[y]:
					x++
				case at[x] > au[y]:
					y++
				default:
					if it[x] == iu[y] {
						s.Add(int(at[x]))
					}
					x++
					y++
				}
			}
			if s != full {
				seen[s] = struct{}{}
			}
		}
		return nil
	})
	if err != nil {
		return governedPartial(res, locals, err, "identifier scan")
	}
	seen := mergeLocals(locals)
	addEmptyIfUncovered(db, len(couples), seen)
	res.Sets = familyOf(seen)
	if err := opts.Budget.Charge("agree", len(res.Sets)); err != nil {
		return res, err
	}
	return res, nil
}

// FromRelation is a convenience: builds the stripped partition database and
// runs the identifier algorithm (the more scalable default).
func FromRelation(ctx context.Context, r *relation.Relation) (*Result, error) {
	return Identifiers(ctx, partition.NewDatabase(r), Options{})
}

func familyOf(seen map[attrset.Set]struct{}) attrset.Family {
	out := make(attrset.Family, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
