// Package agree computes agree sets ag(r) from stripped partition
// databases (paper §3.1).
//
// The agree set of two tuples is ag(ti,tj) = {A ∈ R | ti[A] = tj[A]};
// ag(r) collects them over all tuple couples. Three computations are
// provided:
//
//   - Naive: direct O(n·p²) pairwise scan of the relation — the baseline
//     the paper's introduction rules out for large relations.
//     (It remains strictly sequential: the reference implementation.)
//   - Couples (Algorithm 2 / "Dep-Miner"): generate the tuple couples of
//     the maximal equivalence classes MC (Lemma 1), then sweep the
//     stripped partitions once, adding attribute A to ag(t,t') whenever
//     both tuples share a class of π̂_A. Couples are processed in chunks of
//     at most ChunkSize to bound memory, exactly like the paper's
//     "computing agree sets as soon as a fixed number of couples was
//     generated".
//   - Identifiers (Algorithm 3 / "Dep-Miner 2"): build, per tuple, the
//     list ec(t) of equivalence-class identifiers containing t; then
//     ag(ti,tj) is read off the intersection ec(ti) ∩ ec(tj) (Lemma 2).
//
// All three return the deduplicated set family ag(r); the empty agree set
// is included when some couple of tuples disagrees everywhere, matching
// the paper's running example where ag(r) = {∅, A, BDE, CE, E}.
//
// The paper defines a relation as a *set* of tuples, so all three
// algorithms apply set semantics to duplicate rows: a couple of identical
// tuples (which would agree on the full schema R) contributes nothing to
// ag(r), exactly as if the relation had been deduplicated first.
//
// Deduplication is allocation-free on the hot path: couples are encoded
// into uint64s and encode–sort–compacted, and the agree sets themselves
// are deduplicated the same way — per-worker sorted slices merged at the
// end — instead of through hash maps, which profile far behind at
// benchmark scale (see DESIGN.md §9).
//
// Couples and Identifiers parallelise across Options.Workers goroutines
// by partitioning the couple list; every worker accumulates into a
// private sorted run and the merged family is emitted in canonical order,
// so results are byte-identical for any worker count.
package agree

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/attrset"
	"repro/internal/extsort"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/relation"
)

// DefaultChunkSize is the default bound on couples materialised at once by
// the couples algorithm. The paper uses "a threshold (associated to the
// number of tuples)"; 1<<20 couples ≈ 8 MB of couple state.
const DefaultChunkSize = 1 << 20

// ErrTooManyCouples reports that Algorithm 2's couple space exceeds the
// configured degradation threshold — the signal on which core.Discover
// falls back to Algorithm 3 (the paper's own remedy for correlated
// relations, whose couple blow-up §5.2 demonstrates).
var ErrTooManyCouples = errors.New("agree: couple count exceeds threshold")

// CoupleOverflowError carries the couple count that crossed the
// Options.MaxCouples threshold. It wraps ErrTooManyCouples.
type CoupleOverflowError struct {
	Couples, Max int
}

func (e *CoupleOverflowError) Error() string {
	return fmt.Sprintf("agree: %d couples exceed the %d-couple threshold", e.Couples, e.Max)
}

func (e *CoupleOverflowError) Unwrap() error { return ErrTooManyCouples }

// Result is the outcome of an agree-set computation.
type Result struct {
	// Sets is ag(r) deduplicated, in canonical order. It never contains
	// the full schema R: two distinct tuples cannot agree everywhere, and
	// couples of duplicate rows are collapsed by all three algorithms
	// (set semantics — the paper defines a relation as a set of tuples).
	Sets attrset.Family
	// Couples is the number of tuple couples examined.
	Couples int
	// Chunks is the number of chunk passes performed (couples algorithm;
	// 1 otherwise).
	Chunks int
	// Spill counts the out-of-core activity when Options.MaxAgreeBytes
	// made the accumulators spill sorted runs to disk; all-zero for
	// in-memory runs.
	Spill extsort.Stats
}

// Naive computes ag(r) by comparing every couple of distinct tuples
// directly on the relation: the O(n·p²) baseline. Couples of duplicate
// tuples (agree set = full schema R) are skipped, so duplicate rows yield
// the same ag(r) as the deduplicated relation — matching the partition
// algorithms, which apply the same set semantics.
func Naive(ctx context.Context, r *relation.Relation) (*Result, error) {
	var acc setAccum
	var batch []attrset.Set
	res := &Result{Chunks: 1}
	full := attrset.Universe(r.Arity())
	for i := 0; i < r.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agree: naive scan cancelled: %w", err)
		}
		batch = batch[:0]
		for j := i + 1; j < r.Rows(); j++ {
			res.Couples++
			if s := r.AgreeSet(i, j); s != full {
				batch = append(batch, s)
			}
		}
		if err := acc.absorb(batch); err != nil {
			return nil, err
		}
	}
	res.Sets = attrset.Family(acc.sorted)
	res.Sets.Sort()
	return res, nil
}

// Options configure the stripped-partition algorithms.
type Options struct {
	// ChunkSize bounds the couples held in memory at once by Couples.
	// Zero means DefaultChunkSize.
	ChunkSize int
	// Workers is the worker-pool width for the couple sweep: 0 means
	// runtime.GOMAXPROCS(0), 1 the sequential reference path. Results are
	// byte-identical for every value.
	Workers int
	// MaxCouples makes Couples refuse inputs whose couple space exceeds
	// the threshold, returning a *CoupleOverflowError before any sweep
	// work — the degradation signal core.Discover reacts to. 0 disables.
	MaxCouples int
	// Budget governs the computation: the couple count and the agree
	// sets produced are charged against it, and each chunk/stride passes
	// a deadline checkpoint. On overrun the partial Result accumulated so
	// far is returned together with the guard error. nil = ungoverned.
	Budget *guard.Budget
	// MaxAgreeBytes bounds the agree sets accumulated in memory: when the
	// per-worker accumulation exceeds MaxAgreeBytes/Workers, the sorted
	// run is spilled to a checksummed file in SpillDir and the final merge
	// becomes a streaming k-way merge over disk and memory (see
	// internal/extsort). Spilled bytes are charged to Budget under the
	// "extsort" phase. The emitted family is byte-identical for every
	// threshold — spilling trades I/O for memory, never results. 0 means
	// never spill.
	MaxAgreeBytes int64
	// SpillDir is where spill run files go ("" = the OS temp dir). A
	// per-computation subdirectory is created on first spill and removed
	// when the computation finishes.
	SpillDir string
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// coupleT and coupleU decode an encoded couple: an ordered pair of tuple
// ids (t < u) packed as t<<32 | u. Keeping couples encoded halves their
// memory footprint and makes dedup a sort-and-compact over []uint64.
func coupleT(e uint64) int { return int(e >> 32) }
func coupleU(e uint64) int { return int(uint32(e)) }

// generateCouples lists the distinct couples of the classes of MC,
// encoded. MC classes may overlap (two maximal classes of different
// attributes can share tuples), so the same couple can occur in several
// classes; duplicates are removed by an encode–sort–compact pass, which
// profiles far ahead of hash-set deduplication at benchmark scale.
func generateCouples(mc [][]int) []uint64 {
	total := 0
	for _, c := range mc {
		total += len(c) * (len(c) - 1) / 2
	}
	enc := make([]uint64, 0, total)
	for _, c := range mc {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				enc = append(enc, uint64(c[i])<<32|uint64(uint32(c[j])))
			}
		}
	}
	slices.Sort(enc)
	return slices.Compact(enc)
}

// setAccum deduplicates agree sets without hashing: batches are sorted,
// compacted, and merged into one sorted run. The run is kept in raw
// word order (rawCompare) — an arbitrary but consistent total order
// whose comparisons cost four word compares, against the canonical
// Compare's eight popcounts; only the final deduplicated family (far
// smaller than the batches) is re-sorted canonically, by mergeAccums or
// the caller. Merges across workers are order-insensitive.
//
// With a spiller attached, a run that grows past limit bytes is flushed
// to disk and the in-memory accumulation restarts empty; the spilled
// runs rejoin at mergeAccums' k-way merge. Spill boundaries cannot
// change the emitted family — the merge is the same dedup union wherever
// its inputs live.
type setAccum struct {
	sorted []attrset.Set // deduplicated accumulation, raw word order
	merged []attrset.Set // scratch buffer the merge writes into
	sp     *extsort.Spiller
	limit  int64 // spill threshold in bytes; only read when sp != nil
}

// rawCompare orders sets by their backing words — extsort.Compare, the
// run order shared with the on-disk spill files. Zero iff the sets are
// equal, so compact/merge dedup is exact; the order itself carries no
// meaning and never reaches callers.
func rawCompare(a, b attrset.Set) int { return extsort.Compare(a, b) }

// absorb folds an unsorted batch (modified in place) into the run,
// spilling the run to disk when it outgrows the configured threshold.
func (ac *setAccum) absorb(batch []attrset.Set) error {
	if len(batch) == 0 {
		return nil
	}
	slices.SortFunc(batch, rawCompare)
	batch = slices.Compact(batch)
	merged := mergeSets(ac.merged[:0], ac.sorted, batch)
	ac.merged = ac.sorted[:0] // the old run becomes the next scratch
	ac.sorted = merged
	if ac.sp != nil && int64(len(ac.sorted))*extsort.SetBytes >= ac.limit {
		if err := ac.sp.Spill(ac.sorted); err != nil {
			return err
		}
		ac.sorted = ac.sorted[:0]
	}
	return nil
}

// mergeSets merges two sorted deduplicated runs, appending to dst (which
// must not alias a or b). Equal elements are emitted once.
func mergeSets(dst, a, b []attrset.Set) []attrset.Set {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := rawCompare(a[i], b[j]); {
		case c < 0:
			dst = append(dst, a[i])
			i++
		case c > 0:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// mergeAccums folds per-worker sorted runs — plus any runs the workers
// spilled to disk — into one deduplicated family and sorts it
// canonically. Merging is order-insensitive, so the result depends
// neither on how couples were distributed across workers nor on where
// spill boundaries fell: the family is byte-identical to the all-in-RAM
// path for every threshold and worker count.
func mergeAccums(locals []*workerState, sp *extsort.Spiller) (attrset.Family, error) {
	runs := make([][]attrset.Set, 0, len(locals))
	total := 0
	for _, w := range locals {
		if len(w.accum.sorted) > 0 {
			runs = append(runs, w.accum.sorted)
			total += len(w.accum.sorted)
		}
	}
	if sp != nil && sp.Runs() > 0 {
		// Streaming k-way merge over disk readers and in-memory runs. The
		// capacity estimate counts cross-run duplicates once each, so it
		// can overshoot; clip before the canonical sort.
		out := make(attrset.Family, 0, total+int(sp.Stats().SpilledSets))
		err := sp.Merge(runs, func(s attrset.Set) error {
			out = append(out, s)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = attrset.Family(slices.Clip(out))
		out.Sort()
		return out, nil
	}
	out := attrset.Family(mergeRuns(runs))
	if out == nil {
		out = attrset.Family{}
	}
	out.Sort()
	return out, nil
}

// mergeRuns folds sorted deduplicated runs into one via balanced pairwise
// merging (k-1 two-way merges). Rounds ping-pong between two
// total-capacity scratch buffers — round N's outputs are slices of one
// buffer, round N+1 writes the other — so the whole fold costs a
// constant five allocations regardless of k or round count. An odd
// leftover run is copied into the round's buffer rather than carried by
// reference: a leftover pointing into buffer A would otherwise be read
// two rounds later while buffer A is being rewritten.
func mergeRuns(runs [][]attrset.Set) []attrset.Set {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return slices.Clip(runs[0])
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	half := (len(runs) + 1) / 2
	bufs := [2][]attrset.Set{
		make([]attrset.Set, 0, total),
		make([]attrset.Set, 0, total),
	}
	hdrs := [2][][]attrset.Set{
		make([][]attrset.Set, 0, half),
		make([][]attrset.Set, 0, half),
	}
	cur := runs
	for round := 0; len(cur) > 1; round++ {
		dst := bufs[round&1][:0]
		next := hdrs[round&1][:0]
		for i := 0; i+1 < len(cur); i += 2 {
			start := len(dst)
			dst = mergeSets(dst, cur[i], cur[i+1])
			next = append(next, dst[start:len(dst):len(dst)])
		}
		if len(cur)%2 == 1 {
			start := len(dst)
			dst = append(dst, cur[len(cur)-1]...)
			next = append(next, dst[start:len(dst):len(dst)])
		}
		cur = next
	}
	// Exact-size copy so the family does not pin a total-capacity buffer.
	out := make([]attrset.Set, len(cur[0]))
	copy(out, cur[0])
	return out
}

// workerState is the per-worker accumulation and scratch reused across
// every chunk or stride the worker processes.
type workerState struct {
	accum setAccum
	// chunk sweep scratch (Couples only):
	ag      []attrset.Set // per-couple agree state
	counts  []int32       // counting layout of couples by first tuple
	inClass []bool        // per-class membership marks
	// identifier scratch (Identifiers only):
	batch []attrset.Set // per-stride batch before absorption
}

// Couples computes ag(r) with Algorithm 2 (AGREE_SET): couples from MC,
// swept against every stripped partition, chunked to bound memory. Chunks
// are independent (each sweeps the partitions for its own couples only),
// so they are distributed over Options.Workers goroutines; per-worker
// sorted runs are merged and emitted in canonical order, making the
// result independent of worker count and scheduling.
func Couples(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Couples: len(couples)}
	if opts.MaxCouples > 0 && len(couples) > opts.MaxCouples {
		return nil, &CoupleOverflowError{Couples: len(couples), Max: opts.MaxCouples}
	}

	chunk := opts.chunkSize()
	nChunks := (len(couples) + chunk - 1) / chunk
	res.Chunks = nChunks
	if nChunks == 0 {
		res.Chunks = 1
	}
	if err := opts.Budget.Charge("agree", len(couples)); err != nil {
		return res, err
	}

	workers := pool.Resolve(opts.Workers)
	locals, sp := makeWorkers(workers, opts)
	defer func() {
		if sp != nil {
			res.Spill = sp.Stats()
			sp.Close()
		}
	}()
	full := attrset.Universe(db.Arity())
	err := pool.Run(ctx, workers, nChunks, func(_ context.Context, w, t int) error {
		if err := faultinject.Fire(faultinject.AgreeChunk); err != nil {
			return err
		}
		if err := opts.Budget.Checkpoint("agree"); err != nil {
			return err
		}
		start := t * chunk
		end := min(start+chunk, len(couples))
		ws := locals[w]
		return ws.accum.absorb(processChunk(db, couples[start:end], full, ws))
	})
	if err != nil {
		return governedPartial(res, locals, sp, err, "couples scan")
	}
	sets, err := mergeAccums(locals, sp)
	if err != nil {
		return nil, fmt.Errorf("agree: merging couples-scan runs: %w", err)
	}
	res.Sets = addEmptyIfUncovered(db, len(couples), sets)
	if err := opts.Budget.Charge("agree", len(res.Sets)); err != nil {
		return res, err
	}
	return res, nil
}

// makeWorkers builds the per-worker accumulators, attaching a spiller
// with a per-worker byte threshold when Options.MaxAgreeBytes asks for
// out-of-core accumulation. The per-worker share is clamped up to one
// record, so even a degenerate threshold spills whole records rather
// than nothing.
func makeWorkers(workers int, opts Options) ([]*workerState, *extsort.Spiller) {
	locals := make([]*workerState, workers)
	for w := range locals {
		locals[w] = &workerState{}
	}
	if opts.MaxAgreeBytes <= 0 {
		return locals, nil
	}
	sp := extsort.NewSpiller(opts.SpillDir, opts.Budget)
	perWorker := max(opts.MaxAgreeBytes/int64(workers), extsort.SetBytes)
	for _, ws := range locals {
		ws.accum.sp = sp
		ws.accum.limit = perWorker
	}
	return locals, sp
}

// governedPartial classifies a sweep failure: governed outcomes (budget,
// deadline, contained panic) keep the agree sets the workers accumulated
// before the overrun — pool.Run has joined every worker by the time it
// returns, so the locals are safe to merge — while cancellations and
// ordinary errors discard the result as before. The empty-set completion
// is skipped on the partial path: it is only meaningful for a full sweep.
// When merging the partial runs itself fails (a damaged spill file, say),
// the partial is returned with no family at all — never a silently
// truncated one.
func governedPartial(res *Result, locals []*workerState, sp *extsort.Spiller, err error, what string) (*Result, error) {
	if !guard.Governed(err) {
		return nil, fmt.Errorf("agree: %s cancelled: %w", what, err)
	}
	sets, merr := mergeAccums(locals, sp)
	if merr != nil {
		res.Sets = nil
		return res, err
	}
	res.Sets = sets
	return res, err
}

// addEmptyIfUncovered inserts the empty agree set when some couple of
// tuples lies in no MC class, i.e. disagrees on every attribute. Couples
// inside MC classes always share at least the attribute whose partition
// produced the class, so ∅ can only arise this way. (The paper's Lemma 1
// elides this case, but its running example lists ∅ ∈ ag(r), and omitting
// it would make CMAX_SET wrongly emit ∅ → A for non-constant columns when
// no non-empty agree set avoids A.) The empty set is the minimum of the
// canonical order, so insertion is a front check.
func addEmptyIfUncovered(db *partition.Database, covered int, sets attrset.Family) attrset.Family {
	total := db.NumRows * (db.NumRows - 1) / 2
	if covered >= total {
		return sets
	}
	if len(sets) > 0 && sets[0].IsEmpty() {
		return sets
	}
	return append(attrset.Family{attrset.Empty()}, sets...)
}

// processChunk runs lines 10–21 of Algorithm 2 for one chunk of couples:
// for each stripped partition and each of its classes, add the attribute
// to the agree set of every chunk couple lying inside the class. Agree
// sets equal to full (the whole schema, i.e. duplicate-tuple couples) are
// dropped: set semantics. It reads db and writes only worker-local
// scratch, so concurrent calls on distinct workerStates are safe. The
// returned batch aliases ws.ag and is valid until the next call.
//
// To keep the per-class couple lookup sub-quadratic, couples are indexed by
// their first tuple: for a class c and each t ∈ c, only couples starting at
// t are probed, and membership of the partner is tested with a per-class
// mark table — an indexing refinement of the paper's "if t ∈ c and t' ∈ c".
func processChunk(db *partition.Database, chunk []uint64, full attrset.Set, ws *workerState) []attrset.Set {
	// ag state for the chunk, reset to ∅.
	if cap(ws.ag) < len(chunk) {
		ws.ag = make([]attrset.Set, len(chunk))
	}
	ag := ws.ag[:len(chunk)]
	clear(ag)
	// Index couples by first tuple: counts[t]..counts[t+1] slices into
	// couple indices. chunk arrives sorted by (t, u) from
	// generateCouples, so a counting layout avoids per-tuple allocations.
	if cap(ws.counts) < db.NumRows+1 {
		ws.counts = make([]int32, db.NumRows+1)
		ws.inClass = make([]bool, db.NumRows)
	}
	counts := ws.counts[:db.NumRows+1]
	clear(counts)
	inClass := ws.inClass[:db.NumRows]
	for _, cp := range chunk {
		counts[coupleT(cp)+1]++
	}
	for t := 0; t < db.NumRows; t++ {
		counts[t+1] += counts[t]
	}
	for a, p := range db.Attr {
		for ci, nc := 0, p.NumClasses(); ci < nc; ci++ {
			cls := p.Class(ci)
			for _, t := range cls {
				inClass[t] = true
			}
			for _, t := range cls {
				for k := counts[t]; k < counts[t+1]; k++ {
					if inClass[coupleU(chunk[k])] {
						ag[k].Add(a)
					}
				}
			}
			for _, t := range cls {
				inClass[t] = false
			}
		}
	}
	// Drop full-schema couples (duplicate rows) in place.
	batch := ag[:0]
	for _, s := range ag {
		if s != full {
			batch = append(batch, s)
		}
	}
	return batch
}

// identifierStride is the number of couples one parallel Identifiers task
// intersects: large enough to amortise dispatch, small enough to balance
// load and keep cancellation latency low.
const identifierStride = 1 << 13

// Identifiers computes ag(r) with Algorithm 3 (AGREE_SET 2): per-tuple
// equivalence-class identifier lists, intersected per MC couple (Lemma 2).
// It is the "Dep-Miner 2" variant of the evaluation, more efficient when
// equivalence classes are large or numerous. The couple list is split
// into fixed strides distributed over Options.Workers goroutines, with
// per-worker sorted runs merged in canonical order (deterministic output
// for any worker count).
func Identifiers(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	ecOff, ec := buildECIndex(db)
	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Chunks: 1, Couples: len(couples)}
	if err := opts.Budget.Charge("agree", len(couples)); err != nil {
		return res, err
	}

	workers := pool.Resolve(opts.Workers)
	locals, sp := makeWorkers(workers, opts)
	defer func() {
		if sp != nil {
			res.Spill = sp.Stats()
			sp.Close()
		}
	}()
	full := attrset.Universe(db.Arity())
	tasks := (len(couples) + identifierStride - 1) / identifierStride
	err := pool.Run(ctx, workers, tasks, func(taskCtx context.Context, w, t int) error {
		if err := faultinject.Fire(faultinject.AgreeStride); err != nil {
			return err
		}
		if err := opts.Budget.Checkpoint("agree"); err != nil {
			return err
		}
		start := t * identifierStride
		end := min(start+identifierStride, len(couples))
		ws := locals[w]
		batch, err := intersectStride(taskCtx, ec, ecOff, couples[start:end], full, ws.batch[:0])
		ws.batch = batch
		if err != nil {
			return err
		}
		return ws.accum.absorb(batch)
	})
	if err != nil {
		return governedPartial(res, locals, sp, err, "identifier scan")
	}
	sets, err := mergeAccums(locals, sp)
	if err != nil {
		return nil, fmt.Errorf("agree: merging identifier-scan runs: %w", err)
	}
	res.Sets = addEmptyIfUncovered(db, len(couples), sets)
	if err := opts.Budget.Charge("agree", len(res.Sets)); err != nil {
		return res, err
	}
	return res, nil
}

// buildECIndex lays out, per tuple t, the list ec(t) of (attribute, class
// id) pairs for which t lies in some class of π̂_A, encoded a<<32|id in
// one flat arena sliced per tuple by ecOff. Intersecting two tuples'
// lists by attribute and comparing class ids implements (A,i) ∈ ec(t) ∩
// ec(t'). The arena is laid out by a counting pass, so building it costs
// three allocations regardless of |r| or |R|.
func buildECIndex(db *partition.Database) (ecOff []int32, ec []uint64) {
	ecOff = make([]int32, db.NumRows+1)
	for _, p := range db.Attr {
		for ci, nc := 0, p.NumClasses(); ci < nc; ci++ {
			for _, t := range p.Class(ci) {
				ecOff[t+1]++
			}
		}
	}
	for t := 0; t < db.NumRows; t++ {
		ecOff[t+1] += ecOff[t]
	}
	ec = make([]uint64, ecOff[db.NumRows])
	cursor := make([]int32, db.NumRows)
	for a, p := range db.Attr {
		for ci, nc := 0, p.NumClasses(); ci < nc; ci++ {
			for _, t := range p.Class(ci) {
				// Attributes are visited in increasing order, so each
				// tuple's list is built sorted by attribute.
				ec[ecOff[t]+cursor[t]] = uint64(a)<<32 | uint64(uint32(ci))
				cursor[t]++
			}
		}
	}
	return ecOff, ec
}

// intersectStride runs the Lemma 2 intersection for one stride of
// couples, appending each non-full agree set to batch. It checks the
// task context every 4096 couples to keep cancellation latency low.
func intersectStride(taskCtx context.Context, ec []uint64, ecOff []int32, couples []uint64, full attrset.Set, batch []attrset.Set) ([]attrset.Set, error) {
	for i, cp := range couples {
		if i&0xFFF == 0 {
			if err := taskCtx.Err(); err != nil {
				return batch, err
			}
		}
		var s attrset.Set
		et := ec[ecOff[coupleT(cp)]:ecOff[coupleT(cp)+1]]
		eu := ec[ecOff[coupleU(cp)]:ecOff[coupleU(cp)+1]]
		x, y := 0, 0
		for x < len(et) && y < len(eu) {
			at, au := et[x]>>32, eu[y]>>32
			switch {
			case at < au:
				x++
			case at > au:
				y++
			default:
				if uint32(et[x]) == uint32(eu[y]) {
					s.Add(int(at))
				}
				x++
				y++
			}
		}
		if s != full {
			batch = append(batch, s)
		}
	}
	return batch, nil
}

// FromRelation is a convenience: builds the stripped partition database and
// runs the identifier algorithm (the more scalable default).
func FromRelation(ctx context.Context, r *relation.Relation) (*Result, error) {
	return Identifiers(ctx, partition.NewDatabase(r), Options{})
}
