// Package agree computes agree sets ag(r) from stripped partition
// databases (paper §3.1).
//
// The agree set of two tuples is ag(ti,tj) = {A ∈ R | ti[A] = tj[A]};
// ag(r) collects them over all tuple couples. Three computations are
// provided:
//
//   - Naive: direct O(n·p²) pairwise scan of the relation — the baseline
//     the paper's introduction rules out for large relations.
//   - Couples (Algorithm 2 / "Dep-Miner"): generate the tuple couples of
//     the maximal equivalence classes MC (Lemma 1), then sweep the
//     stripped partitions once, adding attribute A to ag(t,t') whenever
//     both tuples share a class of π̂_A. Couples are processed in chunks of
//     at most ChunkSize to bound memory, exactly like the paper's
//     "computing agree sets as soon as a fixed number of couples was
//     generated".
//   - Identifiers (Algorithm 3 / "Dep-Miner 2"): build, per tuple, the
//     list ec(t) of equivalence-class identifiers containing t; then
//     ag(ti,tj) is read off the intersection ec(ti) ∩ ec(tj) (Lemma 2).
//
// All three return the deduplicated set family ag(r); the empty agree set
// is included when some couple of tuples disagrees everywhere, matching
// the paper's running example where ag(r) = {∅, A, BDE, CE, E}.
package agree

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/attrset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// DefaultChunkSize is the default bound on couples materialised at once by
// the couples algorithm. The paper uses "a threshold (associated to the
// number of tuples)"; 1<<20 couples ≈ 16 MB of couple state.
const DefaultChunkSize = 1 << 20

// Result is the outcome of an agree-set computation.
type Result struct {
	// Sets is ag(r) deduplicated, in canonical order. It never contains
	// the full schema R (two distinct tuples of a duplicate-free relation
	// cannot agree everywhere; duplicates are collapsed by stripped
	// partitions of the couple generators — see Naive for the exception).
	Sets attrset.Family
	// Couples is the number of tuple couples examined.
	Couples int
	// Chunks is the number of chunk passes performed (couples algorithm;
	// 1 otherwise).
	Chunks int
}

// Naive computes ag(r) by comparing every couple of distinct tuples
// directly on the relation: the O(n·p²) baseline. If the relation contains
// duplicate tuples, the full schema R appears as an agree set; callers that
// need set semantics should Deduplicate first (discovery treats R as a
// trivial agree set and CMAX_SET ignores it).
func Naive(ctx context.Context, r *relation.Relation) (*Result, error) {
	seen := make(map[attrset.Set]struct{})
	res := &Result{Chunks: 1}
	for i := 0; i < r.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agree: naive scan cancelled: %w", err)
		}
		for j := i + 1; j < r.Rows(); j++ {
			res.Couples++
			seen[r.AgreeSet(i, j)] = struct{}{}
		}
	}
	res.Sets = familyOf(seen)
	return res, nil
}

// Options configure the stripped-partition algorithms.
type Options struct {
	// ChunkSize bounds the couples held in memory at once by Couples.
	// Zero means DefaultChunkSize.
	ChunkSize int
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// couple is an ordered pair of tuple ids (t < u).
type couple struct{ t, u int }

// generateCouples lists the distinct couples of the classes of MC. MC
// classes may overlap (two maximal classes of different attributes can
// share tuples), so the same couple can occur in several classes;
// duplicates are removed by an encode–sort–compact pass, which profiles
// far ahead of hash-set deduplication at benchmark scale.
func generateCouples(mc [][]int) []couple {
	total := 0
	for _, c := range mc {
		total += len(c) * (len(c) - 1) / 2
	}
	enc := make([]uint64, 0, total)
	for _, c := range mc {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				enc = append(enc, uint64(c[i])<<32|uint64(uint32(c[j])))
			}
		}
	}
	sort.Slice(enc, func(i, j int) bool { return enc[i] < enc[j] })
	out := make([]couple, 0, len(enc))
	var prev uint64
	for i, e := range enc {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		out = append(out, couple{int(e >> 32), int(uint32(e))})
	}
	return out
}

// Couples computes ag(r) with Algorithm 2 (AGREE_SET): couples from MC,
// swept against every stripped partition, chunked to bound memory.
func Couples(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Couples: len(couples)}
	seen := make(map[attrset.Set]struct{})

	chunk := opts.chunkSize()
	for start := 0; start < len(couples); start += chunk {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("agree: couples scan cancelled: %w", err)
		}
		end := start + chunk
		if end > len(couples) {
			end = len(couples)
		}
		res.Chunks++
		processChunk(db, couples[start:end], seen)
	}
	if len(couples) == 0 {
		res.Chunks = 1
	}
	addEmptyIfUncovered(db, len(couples), seen)
	res.Sets = familyOf(seen)
	return res, nil
}

// addEmptyIfUncovered inserts the empty agree set when some couple of
// tuples lies in no MC class, i.e. disagrees on every attribute. Couples
// inside MC classes always share at least the attribute whose partition
// produced the class, so ∅ can only arise this way. (The paper's Lemma 1
// elides this case, but its running example lists ∅ ∈ ag(r), and omitting
// it would make CMAX_SET wrongly emit ∅ → A for non-constant columns when
// no non-empty agree set avoids A.)
func addEmptyIfUncovered(db *partition.Database, covered int, seen map[attrset.Set]struct{}) {
	total := db.NumRows * (db.NumRows - 1) / 2
	if covered < total {
		seen[attrset.Set{}] = struct{}{}
	}
}

// processChunk runs lines 10–21 of Algorithm 2 for one chunk of couples:
// for each stripped partition and each of its classes, add the attribute
// to the agree set of every chunk couple lying inside the class.
//
// To keep the per-class couple lookup sub-quadratic, couples are indexed by
// their first tuple: for a class c and each t ∈ c, only couples starting at
// t are probed, and membership of the partner is tested with a per-class
// mark table — an indexing refinement of the paper's "if t ∈ c and t' ∈ c".
func processChunk(db *partition.Database, chunk []couple, seen map[attrset.Set]struct{}) {
	// ag state for the chunk.
	ag := make([]attrset.Set, len(chunk))
	// Index couples by first tuple: byFirst[t] slices into couple
	// indices. chunk arrives sorted by (t, u) from generateCouples, so a
	// counting layout avoids per-tuple allocations.
	counts := make([]int32, db.NumRows+1)
	for _, cp := range chunk {
		counts[cp.t+1]++
	}
	for t := 0; t < db.NumRows; t++ {
		counts[t+1] += counts[t]
	}
	inClass := make([]bool, db.NumRows)
	for a, p := range db.Attr {
		for _, cls := range p.Classes {
			for _, t := range cls {
				inClass[t] = true
			}
			for _, t := range cls {
				for ci := counts[t]; ci < counts[t+1]; ci++ {
					if inClass[chunk[ci].u] {
						ag[ci].Add(a)
					}
				}
			}
			for _, t := range cls {
				inClass[t] = false
			}
		}
	}
	for i := range ag {
		seen[ag[i]] = struct{}{}
	}
}

// Identifiers computes ag(r) with Algorithm 3 (AGREE_SET 2): per-tuple
// equivalence-class identifier lists, intersected per MC couple (Lemma 2).
// It is the "Dep-Miner 2" variant of the evaluation, more efficient when
// equivalence classes are large or numerous.
func Identifiers(ctx context.Context, db *partition.Database, opts Options) (*Result, error) {
	// ecAttr[t] lists, in increasing attribute order, the attributes A for
	// which t lies in some class of π̂_A, and ecID[t] the class index
	// within that partition. Intersecting two tuples' lists by attribute
	// and comparing class ids implements (A,i) ∈ ec(t) ∩ ec(t').
	ecAttr := make([][]int32, db.NumRows)
	ecID := make([][]int32, db.NumRows)
	for a, p := range db.Attr {
		for i, cls := range p.Classes {
			for _, t := range cls {
				ecAttr[t] = append(ecAttr[t], int32(a))
				ecID[t] = append(ecID[t], int32(i))
			}
		}
	}

	mc := db.MaximalClasses()
	couples := generateCouples(mc)
	res := &Result{Chunks: 1, Couples: len(couples)}
	seen := make(map[attrset.Set]struct{})
	for i, cp := range couples {
		if i&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("agree: identifier scan cancelled: %w", err)
			}
		}
		var s attrset.Set
		at, it := ecAttr[cp.t], ecID[cp.t]
		au, iu := ecAttr[cp.u], ecID[cp.u]
		x, y := 0, 0
		for x < len(at) && y < len(au) {
			switch {
			case at[x] < au[y]:
				x++
			case at[x] > au[y]:
				y++
			default:
				if it[x] == iu[y] {
					s.Add(int(at[x]))
				}
				x++
				y++
			}
		}
		seen[s] = struct{}{}
	}
	addEmptyIfUncovered(db, len(couples), seen)
	res.Sets = familyOf(seen)
	return res, nil
}

// FromRelation is a convenience: builds the stripped partition database and
// runs the identifier algorithm (the more scalable default).
func FromRelation(ctx context.Context, r *relation.Relation) (*Result, error) {
	return Identifiers(ctx, partition.NewDatabase(r), Options{})
}

func familyOf(seen map[attrset.Set]struct{}) attrset.Family {
	out := make(attrset.Family, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
