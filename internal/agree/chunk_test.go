package agree

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/partition"
	"repro/internal/relation"
)

// TestChunkBoundariesExhaustive runs the couples algorithm with every
// chunk size from 1 to couples+1 on the paper example — chunk handling
// must never change the result or the couple count.
func TestChunkBoundariesExhaustive(t *testing.T) {
	db := partition.NewDatabase(relation.PaperExample())
	ref, err := Couples(context.Background(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 1; chunk <= ref.Couples+1; chunk++ {
		res, err := Couples(context.Background(), db, Options{ChunkSize: chunk})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sets.Equal(ref.Sets) {
			t.Fatalf("chunk=%d changed agree sets", chunk)
		}
		if res.Couples != ref.Couples {
			t.Fatalf("chunk=%d changed couple count", chunk)
		}
	}
}

// TestLargeSingleClass stresses the quadratic couple generation of one
// big equivalence class (the paper's "equivalence classes are large"
// regime where Dep-Miner 2 is preferable).
func TestLargeSingleClass(t *testing.T) {
	const rows = 200
	cols := [][]int{make([]int, rows), make([]int, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i] = 0 // one giant class on attribute a
		cols[1][i] = i % 3
	}
	r, err := relation.FromCodes([]string{"a", "b"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	res, err := Couples(context.Background(), db, Options{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Couples != rows*(rows-1)/2 {
		t.Errorf("couples = %d, want %d", res.Couples, rows*(rows-1)/2)
	}
	wantChunks := (res.Couples + 99) / 100
	if res.Chunks != wantChunks {
		t.Errorf("chunks = %d, want %d", res.Chunks, wantChunks)
	}
	// ag(r) = {A}: pairs share a always; pairs with i≡j (mod 3) are
	// duplicate tuples (rows are (0, i%3)), which collapse under set
	// semantics instead of contributing the full schema AB.
	want := attrset.Family{attrset.New(0)}
	if !res.Sets.Equal(want) {
		t.Errorf("ag = %v, want {A}", res.Sets.Strings())
	}
	ids, err := Identifiers(context.Background(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ids.Sets.Equal(want) {
		t.Errorf("identifiers ag = %v", ids.Sets.Strings())
	}
}

// TestManySmallClasses stresses the other regime: many classes of size 2.
func TestManySmallClasses(t *testing.T) {
	const pairs = 300
	rows := 2 * pairs
	cols := [][]int{make([]int, rows), make([]int, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i] = i / 2 // pairs on attribute a
		cols[1][i] = i     // all distinct on b
	}
	r, err := relation.FromCodes([]string{"a", "b"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	for _, opts := range []Options{{}, {ChunkSize: 7}} {
		res, err := Couples(context.Background(), db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Couples != pairs {
			t.Errorf("couples = %d, want %d", res.Couples, pairs)
		}
		want := attrset.Family{attrset.New(0), attrset.Empty()}
		if !res.Sets.Equal(want) {
			t.Errorf("ag = %v, want {∅, A}", res.Sets.Strings())
		}
	}
}

// TestGenerateCouplesDedupAcrossOverlappingClasses builds overlapping MC
// classes through two attributes sharing tuple groups.
func TestGenerateCouplesDedupAcrossOverlappingClasses(t *testing.T) {
	// a groups {0,1,2}; b groups {1,2,3}: couple (1,2) lies in both.
	cols := [][]int{
		{0, 0, 0, 1, 2},
		{7, 5, 5, 5, 8},
	}
	r, err := relation.FromCodes([]string{"a", "b"}, cols)
	if err != nil {
		t.Fatal(err)
	}
	db := partition.NewDatabase(r)
	res, err := Couples(context.Background(), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Couples: from {0,1,2}: (0,1),(0,2),(1,2); from {1,2,3}: (1,2),(1,3),(2,3)
	// → 5 distinct.
	if res.Couples != 5 {
		t.Errorf("couples = %d, want 5", res.Couples)
	}
}

// TestQuickCouplesEqualsCrossCheck fuzzes couple counting: MC-generated
// distinct couples must equal the naive count of couples sharing ≥ 1
// attribute value.
func TestQuickCouplesEqualsCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(4)
		rows := rng.Intn(25)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < rows; i++ {
			for j := i + 1; j < rows; j++ {
				if !r.AgreeSet(i, j).IsEmpty() {
					want++
				}
			}
		}
		db := partition.NewDatabase(r)
		res, err := Couples(context.Background(), db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Couples != want {
			t.Fatalf("iter %d: couples = %d, want %d", iter, res.Couples, want)
		}
	}
}
