package partition

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// classesEqual compares two class lists ignoring order (both are
// normalised, so reflect.DeepEqual suffices after construction, but tests
// use this for clarity).
func classesEqual(a, b [][]int) bool {
	return reflect.DeepEqual(a, b)
}

// Paper Example 2: stripped partitions of the running example. Tuples are
// 0-based here (paper uses 1-based ids).
func TestSinglePaperExample(t *testing.T) {
	r := relation.PaperExample()
	want := [][][]int{
		{{0, 1}},                    // π̂_A
		{{0, 5}, {1, 6}, {2, 3}},    // π̂_B
		{{3, 4}},                    // π̂_C
		{{0, 5}, {1, 6}, {2, 3}},    // π̂_D
		{{0, 5}, {1, 6}, {2, 3, 4}}, // π̂_E
	}
	for a, w := range want {
		p := Single(r, a)
		if !classesEqual(p.Classes(), w) {
			t.Errorf("π̂_%c = %v, want %v", 'A'+a, p.Classes(), w)
		}
		if p.NumRows != 7 {
			t.Errorf("NumRows = %d", p.NumRows)
		}
	}
}

func TestPartitionStats(t *testing.T) {
	r := relation.PaperExample()
	pB := Single(r, 1)
	if pB.NumClasses() != 3 || pB.Size() != 6 {
		t.Errorf("π̂_B stats: classes=%d size=%d", pB.NumClasses(), pB.Size())
	}
	// Full partition π_B has 4 classes ({1,6},{2,7},{3,4},{5}).
	if pB.FullClassCount() != 4 {
		t.Errorf("FullClassCount = %d, want 4", pB.FullClassCount())
	}
	if pB.Couples() != 3 {
		t.Errorf("Couples = %d, want 3", pB.Couples())
	}
	pE := Single(r, 4)
	if pE.Couples() != 1+1+3 {
		t.Errorf("π̂_E couples = %d, want 5", pE.Couples())
	}
	// e(B) = (6-3)/7.
	if got := pB.Error(); got != 3.0/7.0 {
		t.Errorf("Error = %v", got)
	}
	pA := Single(r, 0)
	if pA.IsUnique() {
		t.Error("A is not a key (tuples 1,2 share empnum)")
	}
}

func TestFromClassesNormalisation(t *testing.T) {
	p := FromClasses(10, [][]int{{5}, {}, {4, 2}, {9, 1, 7}})
	want := [][]int{{1, 7, 9}, {2, 4}}
	if !classesEqual(p.Classes(), want) {
		t.Errorf("Classes = %v, want %v", p.Classes(), want)
	}
}

func TestEmptyAndUnique(t *testing.T) {
	r, err := relation.FromRows([]string{"k", "v"},
		[][]string{{"1", "x"}, {"2", "x"}, {"3", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	pk := Single(r, 0)
	if !pk.IsUnique() || pk.Error() != 0 || pk.Couples() != 0 {
		t.Error("key column should give empty stripped partition")
	}
	if pk.FullClassCount() != 3 {
		t.Errorf("FullClassCount = %d, want 3", pk.FullClassCount())
	}
}

func TestRefines(t *testing.T) {
	r := relation.PaperExample()
	pB := Single(r, 1)
	pD := Single(r, 3)
	pE := Single(r, 4)
	// B → D holds (identical partitions refine each other).
	if !pB.Refines(pD) || !pD.Refines(pB) {
		t.Error("π̂_B and π̂_D should refine each other")
	}
	// B → E holds, so π_B refines π_E, not conversely.
	if !pB.Refines(pE) {
		t.Error("π̂_B should refine π̂_E")
	}
	if pE.Refines(pB) {
		t.Error("π̂_E should not refine π̂_B (E → B fails)")
	}
	// π_{BC} refines everything it is a product of.
	pBC := Product(pB, Single(r, 2))
	if !pBC.Refines(pB) {
		t.Error("product must refine factor")
	}
}

func TestProductPaperExample(t *testing.T) {
	r := relation.PaperExample()
	pB := Single(r, 1)
	pC := Single(r, 2)
	// π̂_{BC}: classes of tuples agreeing on both depnum and year → {3,4}
	// agree on B={2,3}? tuples 2,3 (0-based) share B; years 92,98 differ →
	// singleton. Tuples 3,4 share C=98 but differ on B. So π̂_BC = ∅.
	pBC := Product(pB, pC)
	if !pBC.IsUnique() {
		t.Errorf("π̂_BC = %v, want empty", pBC.Classes())
	}
	// π̂_{BE} = π̂_B (B determines E).
	pBE := Product(pB, Single(r, 4))
	if !classesEqual(pBE.Classes(), pB.Classes()) {
		t.Errorf("π̂_BE = %v, want %v", pBE.Classes(), pB.Classes())
	}
	// Product with the empty-set partition (single class) is identity.
	pEmpty := Of(r, attrset.Empty())
	got := Product(pEmpty, pB)
	if !classesEqual(got.Classes(), pB.Classes()) {
		t.Errorf("π̂_∅ · π̂_B = %v, want %v", got.Classes(), pB.Classes())
	}
}

func TestProductCommutes(t *testing.T) {
	r := relation.PaperExample()
	for a := 0; a < r.Arity(); a++ {
		for b := 0; b < r.Arity(); b++ {
			ab := Product(Single(r, a), Single(r, b))
			ba := Product(Single(r, b), Single(r, a))
			if !classesEqual(ab.Classes(), ba.Classes()) {
				t.Errorf("product not commutative for %d,%d: %v vs %v",
					a, b, ab.Classes(), ba.Classes())
			}
		}
	}
}

// naivePartition computes π̂_X by grouping full tuples — the ground truth.
func naivePartition(r *relation.Relation, x attrset.Set) *Partition {
	groups := make(map[string][]int)
	for t := 0; t < r.Rows(); t++ {
		k := ""
		x.ForEach(func(a attrset.Attr) {
			k += r.Value(t, a) + "\x00"
		})
		groups[k] = append(groups[k], t)
	}
	var classes [][]int
	for _, g := range groups {
		classes = append(classes, g)
	}
	return FromClasses(r.Rows(), classes)
}

func TestOfMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(40)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(5)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		for bits := 0; bits < 1<<n; bits++ {
			var x attrset.Set
			for b := 0; b < n; b++ {
				if bits&(1<<b) != 0 {
					x.Add(b)
				}
			}
			got := Of(r, x)
			want := naivePartition(r, x)
			if !classesEqual(got.Classes(), want.Classes()) {
				t.Fatalf("Of(%v) = %v, want %v (rows=%d)", x, got.Classes(), want.Classes(), rows)
			}
		}
	}
}

func TestProberReuse(t *testing.T) {
	r := relation.PaperExample()
	pr := NewProber(r.Rows())
	pB, pD := Single(r, 1), Single(r, 3)
	first := pr.Product(pB, pD)
	second := pr.Product(pB, pD)
	if !classesEqual(first.Classes(), second.Classes()) {
		t.Error("prober reuse changed result")
	}
	// Growing capacity on demand.
	small := NewProber(1)
	got := small.Product(pB, pD)
	if !classesEqual(got.Classes(), first.Classes()) {
		t.Error("prober capacity growth broken")
	}
}

func TestDatabase(t *testing.T) {
	r := relation.PaperExample()
	db := NewDatabase(r)
	if db.Arity() != 5 || db.NumRows != 7 {
		t.Fatalf("db shape %d/%d", db.Arity(), db.NumRows)
	}
	if !classesEqual(db.Attr[2].Classes(), [][]int{{3, 4}}) {
		t.Errorf("π̂_C = %v", db.Attr[2].Classes())
	}
}

// Paper Example 4: MC = {{1,2},{1,6},{2,7},{3,4,5}} (1-based) =
// {{0,1},{0,5},{1,6},{2,3,4}} (0-based).
func TestMaximalClassesPaperExample(t *testing.T) {
	r := relation.PaperExample()
	db := NewDatabase(r)
	mc := db.MaximalClasses()
	want := [][]int{{0, 1}, {0, 5}, {1, 6}, {2, 3, 4}}
	if !classesEqual(mc, want) {
		t.Errorf("MC = %v, want %v", mc, want)
	}
}

func TestMaximalClassesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(5)
		rows := rng.Intn(30)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(4)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDatabase(r)
		mc := db.MaximalClasses()
		// 1. Every class of every stripped partition is ⊆ some MC class.
		for _, p := range db.Attr {
			for _, c := range p.Classes() {
				if !coveredBy(c, mc) {
					t.Fatalf("class %v not covered by MC %v", c, mc)
				}
			}
		}
		// 2. MC is an antichain.
		for i := range mc {
			for j := range mc {
				if i != j && subsetInts(mc[i], mc[j]) {
					t.Fatalf("MC not antichain: %v ⊆ %v", mc[i], mc[j])
				}
			}
		}
		// 3. Every MC class is an actual class of some stripped partition.
		for _, c := range mc {
			found := false
			for _, p := range db.Attr {
				for _, pc := range p.Classes() {
					if reflect.DeepEqual(c, pc) {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("MC class %v not in any partition", c)
			}
		}
	}
}

func coveredBy(c []int, mc [][]int) bool {
	for _, m := range mc {
		if subsetInts(c, m) {
			return true
		}
	}
	return false
}

// subsetInts reports a ⊆ b for sorted slices.
func subsetInts(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func TestMaximalClassesDedupAcrossAttrs(t *testing.T) {
	// B and D have identical partitions in the paper example; MC must not
	// contain duplicates.
	r := relation.PaperExample()
	mc := NewDatabase(r).MaximalClasses()
	seen := map[string]bool{}
	for _, c := range mc {
		k := ""
		for _, t := range c {
			k += string(rune(t)) + ","
		}
		if seen[k] {
			t.Fatalf("duplicate MC class %v", c)
		}
		seen[k] = true
	}
	sorted := slices.IsSortedFunc(mc, cmpInts)
	if !sorted {
		t.Error("MC not in canonical order")
	}
}
