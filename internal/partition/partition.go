// Package partition implements partitions and stripped partitions of a
// relation under attribute sets, the reduced representation both Dep-Miner
// and TANE operate on (paper §3.1, after Cosmadakis et al. and Huhtala et
// al.).
//
// Two tuples are equivalent w.r.t. an attribute set X when they agree on
// every attribute of X; π_X is the set of the resulting equivalence
// classes. A *stripped* partition π̂_X drops the singleton classes — a
// tuple alone in its class agrees with no other tuple, so it can never
// contribute to an agree set or violate an FD.
//
// Partitions are stored flat: one shared row store holding the tuple ids
// of every class back to back, plus per-class offsets. A discovery run
// touches millions of equivalence classes (every partition product makes
// new ones), so the layout matters: the flat store costs two allocations
// per partition instead of one per class, and iterating classes walks one
// contiguous array (see DESIGN.md §9).
package partition

import (
	"slices"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// Partition is a stripped partition: the equivalence classes of size > 1 of
// some attribute set over a relation of NumRows tuples. Classes hold tuple
// indices in increasing order; classes are ordered by their smallest tuple
// index, so a Partition has one canonical representation.
//
// The classes live in a flat layout — one shared row store plus class
// offsets — accessed through NumClasses and Class.
type Partition struct {
	// rows is the shared row store: tuple ids of all classes back to back,
	// each class contiguous and ascending, classes ordered by first tuple.
	rows []int
	// offs are the class boundaries: class i is rows[offs[i]:offs[i+1]].
	// Empty when the partition has no stripped classes.
	offs []int32
	// NumRows is |r|, needed to recover singleton counts and error
	// measures without the relation.
	NumRows int
}

// Single computes the stripped partition π̂_A for one attribute directly
// from the relation's dictionary codes. Cost: O(|r| + |dom(A)|), with
// exactly four allocations regardless of the number of classes.
func Single(r *relation.Relation, a attrset.Attr) *Partition {
	return SingleFromCodes(r.Rows(), r.Column(a), r.DomainSize(a))
}

// SingleFromCodes computes π̂_A from a bare dictionary-coded column: codes
// per tuple, dense in [0, dom). It is Single without the relation — the
// entry point for sources that stream one column at a time (the durable
// snapshot reader) and never materialise a relation.Relation.
func SingleFromCodes(numRows int, col []int, dom int) *Partition {
	p := &Partition{NumRows: numRows}
	if dom == 0 {
		return p
	}
	// Count occurrences per dictionary code.
	counts := make([]int32, dom)
	for _, c := range col {
		counts[c]++
	}
	nc, size := 0, 0
	for _, n := range counts {
		if n > 1 {
			nc++
			size += int(n)
		}
	}
	if nc == 0 {
		return p
	}
	// Assign class ids to codes with count > 1 in order of first
	// occurrence: that order is exactly "classes sorted by smallest tuple
	// index", so no normalisation sort is needed afterwards.
	classOf := make([]int32, dom)
	for i := range classOf {
		classOf[i] = -1
	}
	p.rows = make([]int, size)
	p.offs = make([]int32, nc+1)
	next := 0
	for _, c := range col {
		if counts[c] > 1 && classOf[c] == -1 {
			classOf[c] = int32(next)
			p.offs[next+1] = counts[c]
			next++
		}
	}
	for i := 0; i < nc; i++ {
		p.offs[i+1] += p.offs[i]
	}
	// Fill: scanning tuples in order keeps each class ascending.
	cursor := make([]int32, nc)
	for t, c := range col {
		if id := classOf[c]; id >= 0 {
			p.rows[p.offs[id]+cursor[id]] = t
			cursor[id]++
		}
	}
	return p
}

// FromClasses builds a stripped partition from explicit classes. Singleton
// and empty classes are dropped; classes are normalised to canonical order.
// It is primarily for tests and synthetic inputs.
func FromClasses(numRows int, classes [][]int) *Partition {
	kept := make([][]int, 0, len(classes))
	for _, c := range classes {
		if len(c) > 1 {
			cc := slices.Clone(c)
			slices.Sort(cc)
			kept = append(kept, cc)
		}
	}
	slices.SortFunc(kept, func(a, b []int) int { return a[0] - b[0] })
	p := &Partition{NumRows: numRows}
	for _, c := range kept {
		p.appendClass(c)
	}
	return p
}

// appendClass adds a class (already sorted, size > 1) to the flat store.
// Callers must append classes in canonical order (by first tuple index).
func (p *Partition) appendClass(c []int) {
	if len(p.offs) == 0 {
		p.offs = append(p.offs, 0)
	}
	p.rows = append(p.rows, c...)
	p.offs = append(p.offs, int32(len(p.rows)))
}

// NumClasses returns the number of stripped (size > 1) classes.
func (p *Partition) NumClasses() int {
	if len(p.offs) == 0 {
		return 0
	}
	return len(p.offs) - 1
}

// Class returns the i-th class as a view into the shared row store: tuple
// ids in increasing order. The caller must not modify it.
func (p *Partition) Class(i int) []int {
	return p.rows[p.offs[i]:p.offs[i+1]]
}

// Classes materialises the classes as a slice of views into the row store
// (one allocation for the spine; the classes themselves are not copied).
// Hot paths should iterate with NumClasses/Class instead.
func (p *Partition) Classes() [][]int {
	out := make([][]int, p.NumClasses())
	for i := range out {
		out[i] = p.Class(i)
	}
	return out
}

// Size returns ||π̂||, the total number of tuples across stripped classes.
func (p *Partition) Size() int { return len(p.rows) }

// Bytes returns the heap footprint of the partition: the flat row store,
// the class offsets, and the struct header. This is the unit the
// memory-bounded partition store charges, so it must track the real cost
// of keeping a partition resident.
func (p *Partition) Bytes() int64 {
	const header = 56 // two slice headers + NumRows
	return int64(len(p.rows))*8 + int64(len(p.offs))*4 + header
}

// FullClassCount returns |π_X| of the unstripped partition: stripped
// classes plus the singletons that stripping removed.
func (p *Partition) FullClassCount() int {
	return p.NumClasses() + (p.NumRows - p.Size())
}

// Error returns e(X) = (||π̂_X|| - |π̂_X|) / |r|, TANE's g₃-style measure:
// the minimum fraction of tuples to remove for X to become a superkey. A
// partition of all singletons has error 0.
func (p *Partition) Error() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Size()-p.NumClasses()) / float64(p.NumRows)
}

// IsUnique reports whether the attribute set is a superkey: every class is
// a singleton, i.e. the stripped partition is empty.
func (p *Partition) IsUnique() bool { return len(p.rows) == 0 }

// Couples returns the number of tuple couples (unordered pairs) inside the
// partition's classes: Σ_c |c|·(|c|-1)/2. This is the work the agree-set
// computation would do on this partition.
func (p *Partition) Couples() int {
	n := 0
	for i, nc := 0, p.NumClasses(); i < nc; i++ {
		l := len(p.Class(i))
		n += l * (l - 1) / 2
	}
	return n
}

// Refines reports whether p refines q: every class of p is contained in a
// class of q. (π_X refines π_Y ⟺ Y ⊆ X determines at tuple level; in
// particular X → A holds iff π_X refines π_{A}.) Both partitions must be
// over the same number of rows.
func (p *Partition) Refines(q *Partition) bool {
	// Map each tuple to its class id in q; stripped-away singletons get -1
	// (a unique virtual class each, which any subset of size ≥ 2 cannot
	// be inside).
	cls := make([]int32, p.NumRows)
	for i := range cls {
		cls[i] = -1
	}
	for id, nc := 0, q.NumClasses(); id < nc; id++ {
		for _, t := range q.Class(id) {
			cls[t] = int32(id)
		}
	}
	for i, nc := 0, p.NumClasses(); i < nc; i++ {
		c := p.Class(i)
		first := cls[c[0]]
		if first == -1 {
			return false
		}
		for _, t := range c[1:] {
			if cls[t] != first {
				return false
			}
		}
	}
	return true
}

// Product computes the stripped partition π̂_{X∪Y} = π̂_X · π̂_Y from the
// stripped partitions of X and Y, using the probe-table algorithm of TANE
// (Huhtala et al. 1998, procedure STRIPPED_PRODUCT). Cost: O(||π̂_X|| +
// ||π̂_Y||) with scratch tables reused across calls via Prober.
func Product(x, y *Partition) *Partition {
	pr := NewProber(x.NumRows)
	return pr.Product(x, y)
}

// Prober carries the scratch state for repeated partition products, so a
// levelwise sweep allocates the O(|r|) tables once and each product costs
// two allocations (the result's flat row store and offsets).
type Prober struct {
	class  []int32 // tuple → class id in x, or -1
	bucket [][]int // class id in x → tuples collected (backing reused)
	touch  []int32 // class ids touched in this product
	flat   []int   // staging row store for the unordered first pass
	starts,
	lens []int32 // class boundaries within flat
	perm []int32 // class permutation for canonical ordering
}

// NewProber returns scratch state for relations with numRows tuples.
func NewProber(numRows int) *Prober {
	return &Prober{class: make([]int32, numRows)}
}

// Product computes π̂_X · π̂_Y. Both partitions must have NumRows equal to
// the prober's capacity.
func (pr *Prober) Product(x, y *Partition) *Partition {
	if len(pr.class) < x.NumRows {
		pr.class = make([]int32, x.NumRows)
	}
	class := pr.class
	for i := range class {
		class[i] = -1
	}
	xnc := x.NumClasses()
	for id := 0; id < xnc; id++ {
		for _, t := range x.Class(id) {
			class[t] = int32(id)
		}
	}
	if cap(pr.bucket) < xnc {
		pr.bucket = append(pr.bucket[:cap(pr.bucket)], make([][]int, xnc-cap(pr.bucket))...)
	}
	bucket := pr.bucket[:xnc]
	out := &Partition{NumRows: x.NumRows}
	// First pass: the probe-table gather of STRIPPED_PRODUCT, staging
	// surviving classes into the reusable flat store instead of
	// allocating a slice per class. Scanning a y-class ascending keeps
	// each bucket — and hence each staged class — ascending.
	pr.flat = pr.flat[:0]
	pr.starts, pr.lens, pr.touch = pr.starts[:0], pr.lens[:0], pr.touch[:0]
	flat := pr.flat
	for yi, ync := 0, y.NumClasses(); yi < ync; yi++ {
		c := y.Class(yi)
		for _, t := range c {
			if id := class[t]; id >= 0 {
				if len(bucket[id]) == 0 {
					pr.touch = append(pr.touch, id)
				}
				bucket[id] = append(bucket[id], t)
			}
		}
		for _, id := range pr.touch {
			if len(bucket[id]) > 1 {
				pr.starts = append(pr.starts, int32(len(flat)))
				pr.lens = append(pr.lens, int32(len(bucket[id])))
				flat = append(flat, bucket[id]...)
			}
			bucket[id] = bucket[id][:0]
		}
		pr.touch = pr.touch[:0]
	}
	pr.flat = flat
	nc := len(pr.starts)
	if nc == 0 {
		return out
	}
	// Canonical order: classes sorted by smallest tuple index. The touch
	// order is "by first element" only *within* one y-class — classes
	// from a later y-class can still start lower — so a permutation sort
	// over the class starts is required.
	perm := pr.perm[:0]
	for i := 0; i < nc; i++ {
		perm = append(perm, int32(i))
	}
	starts, lens := pr.starts, pr.lens
	slices.SortFunc(perm, func(a, b int32) int {
		return flat[starts[a]] - flat[starts[b]]
	})
	pr.perm = perm
	size := 0
	for _, l := range lens {
		size += int(l)
	}
	rows := make([]int, 0, size)
	offs := make([]int32, 1, nc+1)
	for _, ci := range perm {
		rows = append(rows, flat[starts[ci]:starts[ci]+lens[ci]]...)
		offs = append(offs, int32(len(rows)))
	}
	out.rows = rows
	out.offs = offs
	return out
}

// Of computes the stripped partition of an arbitrary attribute set by
// folding Product over the single-attribute partitions. The empty set
// yields one class containing all tuples (every pair of tuples agrees on
// ∅), stripped if |r| < 2.
func Of(r *relation.Relation, x attrset.Set) *Partition {
	attrs := x.Attrs()
	if len(attrs) == 0 {
		all := make([]int, r.Rows())
		for i := range all {
			all[i] = i
		}
		return FromClasses(r.Rows(), [][]int{all})
	}
	p := Single(r, attrs[0])
	for _, a := range attrs[1:] {
		p = Product(p, Single(r, a))
	}
	return p
}

// Database is the stripped partition database r̂ = ⋃_{A∈R} π̂_A: one
// stripped partition per attribute (paper §3.1). It is the only
// representation of the relation the discovery algorithms consume.
type Database struct {
	// Attr[a] is π̂_a.
	Attr []*Partition
	// NumRows is |r|.
	NumRows int
}

// NewDatabase extracts the stripped partition database from a relation —
// the paper's pre-processing phase.
func NewDatabase(r *relation.Relation) *Database {
	db := &Database{Attr: make([]*Partition, r.Arity()), NumRows: r.Rows()}
	for a := 0; a < r.Arity(); a++ {
		db.Attr[a] = Single(r, a)
	}
	return db
}

// ColumnSource supplies dictionary-coded columns one at a time — the
// out-of-core complement of relation.Relation. Column returns attribute
// a's codes (dense in [0, domain)) plus the domain size; each call may
// read from disk, and the returned slice is owned by the caller. The
// durable snapshot reader satisfies this interface.
type ColumnSource interface {
	Arity() int
	NumRows() int
	Column(a int) ([]int, int, error)
}

// NewDatabaseFromSource extracts the stripped partition database from a
// streaming column source: one column is resident at a time, and only its
// stripped partition (typically far smaller than the column) is retained.
// This is how a multi-gigabyte snapshot feeds discovery without ever
// materialising the relation.
func NewDatabaseFromSource(src ColumnSource) (*Database, error) {
	db := &Database{Attr: make([]*Partition, src.Arity()), NumRows: src.NumRows()}
	for a := range db.Attr {
		col, dom, err := src.Column(a)
		if err != nil {
			return nil, err
		}
		db.Attr[a] = SingleFromCodes(db.NumRows, col, dom)
	}
	return db, nil
}

// Arity returns |R|.
func (db *Database) Arity() int { return len(db.Attr) }

// MaximalClasses computes MC = Max⊆{c ∈ π̂_A | π̂_A ∈ r̂}: the ⊆-maximal
// equivalence classes across all attributes (paper §3.1). Only couples
// inside some class of MC can have a non-empty agree set (Lemma 1).
//
// A class c of π̂_A is dominated exactly when all its tuples fall in one
// common class c' of some π̂_B with |c'| > |c| (equivalence classes of a
// single partition are disjoint, so c ⊂ c' forces this shape). Equal-size
// coincidences (c = c') are kept once, for the smallest attribute index.
// Testing each class against every other attribute's tuple→class table
// costs O(‖r̂‖·|R|) overall — linear in the stripped partition database
// per attribute.
//
// The returned classes are views into the partitions' row stores; the
// caller must not modify them.
func (db *Database) MaximalClasses() [][]int {
	n := len(db.Attr)
	// tupleClass[b][t] = index of t's class within π̂_b, or -1.
	tupleClass := make([][]int32, n)
	for b, p := range db.Attr {
		tc := make([]int32, db.NumRows)
		for i := range tc {
			tc[i] = -1
		}
		for i, nc := 0, p.NumClasses(); i < nc; i++ {
			for _, t := range p.Class(i) {
				tc[t] = int32(i)
			}
		}
		tupleClass[b] = tc
	}

	var out [][]int
	for a, p := range db.Attr {
		for ci, nc := 0, p.NumClasses(); ci < nc; ci++ {
			c := p.Class(ci)
			dominated := false
			for b := 0; b < n && !dominated; b++ {
				if b == a {
					continue
				}
				tc := tupleClass[b]
				id := tc[c[0]]
				if id < 0 {
					continue
				}
				same := true
				for _, t := range c[1:] {
					if tc[t] != id {
						same = false
						break
					}
				}
				if !same {
					continue
				}
				other := db.Attr[b].Class(int(id))
				if len(other) > len(c) || (len(other) == len(c) && b < a) {
					dominated = true
				}
			}
			if !dominated {
				out = append(out, c)
			}
		}
	}
	slices.SortFunc(out, cmpInts)
	return out
}

func cmpInts(a, b []int) int { return slices.Compare(a, b) }

func lessInts(a, b []int) bool { return cmpInts(a, b) < 0 }
