// Package partition implements partitions and stripped partitions of a
// relation under attribute sets, the reduced representation both Dep-Miner
// and TANE operate on (paper §3.1, after Cosmadakis et al. and Huhtala et
// al.).
//
// Two tuples are equivalent w.r.t. an attribute set X when they agree on
// every attribute of X; π_X is the set of the resulting equivalence
// classes. A *stripped* partition π̂_X drops the singleton classes — a
// tuple alone in its class agrees with no other tuple, so it can never
// contribute to an agree set or violate an FD.
package partition

import (
	"sort"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// Partition is a stripped partition: the equivalence classes of size > 1 of
// some attribute set over a relation of NumRows tuples. Classes hold tuple
// indices in increasing order; classes are ordered by their smallest tuple
// index, so a Partition has one canonical representation.
type Partition struct {
	// Classes are the stripped equivalence classes.
	Classes [][]int
	// NumRows is |r|, needed to recover singleton counts and error
	// measures without the relation.
	NumRows int
}

// Single computes the stripped partition π̂_A for one attribute directly
// from the relation's dictionary codes. Cost: O(|r|).
func Single(r *relation.Relation, a attrset.Attr) *Partition {
	col := r.Column(a)
	// Dictionary codes are dense in [0, DomainSize), so bucket by code.
	buckets := make([][]int, r.DomainSize(a))
	for t, c := range col {
		buckets[c] = append(buckets[c], t)
	}
	p := &Partition{NumRows: r.Rows()}
	for _, b := range buckets {
		if len(b) > 1 {
			p.Classes = append(p.Classes, b)
		}
	}
	p.normalize()
	return p
}

// FromClasses builds a stripped partition from explicit classes. Singleton
// and empty classes are dropped; classes are normalised to canonical order.
// It is primarily for tests and synthetic inputs.
func FromClasses(numRows int, classes [][]int) *Partition {
	p := &Partition{NumRows: numRows}
	for _, c := range classes {
		if len(c) > 1 {
			cc := append([]int(nil), c...)
			sort.Ints(cc)
			p.Classes = append(p.Classes, cc)
		}
	}
	p.normalize()
	return p
}

func (p *Partition) normalize() {
	for _, c := range p.Classes {
		sort.Ints(c)
	}
	sort.Slice(p.Classes, func(i, j int) bool {
		return p.Classes[i][0] < p.Classes[j][0]
	})
}

// NumClasses returns the number of stripped (size > 1) classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Size returns ||π̂||, the total number of tuples across stripped classes.
func (p *Partition) Size() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c)
	}
	return n
}

// FullClassCount returns |π_X| of the unstripped partition: stripped
// classes plus the singletons that stripping removed.
func (p *Partition) FullClassCount() int {
	return p.NumClasses() + (p.NumRows - p.Size())
}

// Error returns e(X) = (||π̂_X|| - |π̂_X|) / |r|, TANE's g₃-style measure:
// the minimum fraction of tuples to remove for X to become a superkey. A
// partition of all singletons has error 0.
func (p *Partition) Error() float64 {
	if p.NumRows == 0 {
		return 0
	}
	return float64(p.Size()-p.NumClasses()) / float64(p.NumRows)
}

// IsUnique reports whether the attribute set is a superkey: every class is
// a singleton, i.e. the stripped partition is empty.
func (p *Partition) IsUnique() bool { return len(p.Classes) == 0 }

// Couples returns the number of tuple couples (unordered pairs) inside the
// partition's classes: Σ_c |c|·(|c|-1)/2. This is the work the agree-set
// computation would do on this partition.
func (p *Partition) Couples() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c) * (len(c) - 1) / 2
	}
	return n
}

// Refines reports whether p refines q: every class of p is contained in a
// class of q. (π_X refines π_Y ⟺ Y ⊆ X determines at tuple level; in
// particular X → A holds iff π_X refines π_{A}.) Both partitions must be
// over the same number of rows.
func (p *Partition) Refines(q *Partition) bool {
	// Map each tuple to its class id in q; stripped-away singletons get -1
	// (a unique virtual class each, which any subset of size ≥ 2 cannot
	// be inside).
	cls := make([]int, p.NumRows)
	for i := range cls {
		cls[i] = -1
	}
	for id, c := range q.Classes {
		for _, t := range c {
			cls[t] = id
		}
	}
	for _, c := range p.Classes {
		first := cls[c[0]]
		if first == -1 {
			return false
		}
		for _, t := range c[1:] {
			if cls[t] != first {
				return false
			}
		}
	}
	return true
}

// Product computes the stripped partition π̂_{X∪Y} = π̂_X · π̂_Y from the
// stripped partitions of X and Y, using the probe-table algorithm of TANE
// (Huhtala et al. 1998, procedure STRIPPED_PRODUCT). Cost: O(||π̂_X|| +
// ||π̂_Y||) with two scratch tables reused across calls via Prober.
func Product(x, y *Partition) *Partition {
	pr := NewProber(x.NumRows)
	return pr.Product(x, y)
}

// Prober carries the scratch state for repeated partition products, so a
// levelwise sweep allocates the O(|r|) tables once.
type Prober struct {
	class  []int   // tuple → class id in x, or -1
	bucket [][]int // class id in x → tuples collected
	touch  []int   // class ids touched in this product
}

// NewProber returns scratch state for relations with numRows tuples.
func NewProber(numRows int) *Prober {
	return &Prober{class: make([]int, numRows)}
}

// Product computes π̂_X · π̂_Y. Both partitions must have NumRows equal to
// the prober's capacity.
func (pr *Prober) Product(x, y *Partition) *Partition {
	if len(pr.class) < x.NumRows {
		pr.class = make([]int, x.NumRows)
	}
	for i := range pr.class {
		pr.class[i] = -1
	}
	for id, c := range x.Classes {
		for _, t := range c {
			pr.class[t] = id
		}
	}
	if cap(pr.bucket) < len(x.Classes) {
		pr.bucket = make([][]int, len(x.Classes))
	}
	bucket := pr.bucket[:len(x.Classes)]
	out := &Partition{NumRows: x.NumRows}
	pr.touch = pr.touch[:0]
	for _, c := range y.Classes {
		for _, t := range c {
			if id := pr.class[t]; id >= 0 {
				if len(bucket[id]) == 0 {
					pr.touch = append(pr.touch, id)
				}
				bucket[id] = append(bucket[id], t)
			}
		}
		for _, id := range pr.touch {
			if len(bucket[id]) > 1 {
				cls := append([]int(nil), bucket[id]...)
				out.Classes = append(out.Classes, cls)
			}
			bucket[id] = bucket[id][:0]
		}
		pr.touch = pr.touch[:0]
	}
	out.normalize()
	return out
}

// Of computes the stripped partition of an arbitrary attribute set by
// folding Product over the single-attribute partitions. The empty set
// yields one class containing all tuples (every pair of tuples agrees on
// ∅), stripped if |r| < 2.
func Of(r *relation.Relation, x attrset.Set) *Partition {
	attrs := x.Attrs()
	if len(attrs) == 0 {
		all := make([]int, r.Rows())
		for i := range all {
			all[i] = i
		}
		return FromClasses(r.Rows(), [][]int{all})
	}
	p := Single(r, attrs[0])
	for _, a := range attrs[1:] {
		p = Product(p, Single(r, a))
	}
	return p
}

// Database is the stripped partition database r̂ = ⋃_{A∈R} π̂_A: one
// stripped partition per attribute (paper §3.1). It is the only
// representation of the relation the discovery algorithms consume.
type Database struct {
	// Attr[a] is π̂_a.
	Attr []*Partition
	// NumRows is |r|.
	NumRows int
}

// NewDatabase extracts the stripped partition database from a relation —
// the paper's pre-processing phase.
func NewDatabase(r *relation.Relation) *Database {
	db := &Database{Attr: make([]*Partition, r.Arity()), NumRows: r.Rows()}
	for a := 0; a < r.Arity(); a++ {
		db.Attr[a] = Single(r, a)
	}
	return db
}

// Arity returns |R|.
func (db *Database) Arity() int { return len(db.Attr) }

// MaximalClasses computes MC = Max⊆{c ∈ π̂_A | π̂_A ∈ r̂}: the ⊆-maximal
// equivalence classes across all attributes (paper §3.1). Only couples
// inside some class of MC can have a non-empty agree set (Lemma 1).
//
// A class c of π̂_A is dominated exactly when all its tuples fall in one
// common class c' of some π̂_B with |c'| > |c| (equivalence classes of a
// single partition are disjoint, so c ⊂ c' forces this shape). Equal-size
// coincidences (c = c') are kept once, for the smallest attribute index.
// Testing each class against every other attribute's tuple→class table
// costs O(‖r̂‖·|R|) overall — linear in the stripped partition database
// per attribute.
func (db *Database) MaximalClasses() [][]int {
	n := len(db.Attr)
	// tupleClass[b][t] = index of t's class within π̂_b, or -1.
	tupleClass := make([][]int32, n)
	for b, p := range db.Attr {
		tc := make([]int32, db.NumRows)
		for i := range tc {
			tc[i] = -1
		}
		for i, c := range p.Classes {
			for _, t := range c {
				tc[t] = int32(i)
			}
		}
		tupleClass[b] = tc
	}

	var out [][]int
	for a, p := range db.Attr {
		for _, c := range p.Classes {
			dominated := false
			for b := 0; b < n && !dominated; b++ {
				if b == a {
					continue
				}
				tc := tupleClass[b]
				id := tc[c[0]]
				if id < 0 {
					continue
				}
				same := true
				for _, t := range c[1:] {
					if tc[t] != id {
						same = false
						break
					}
				}
				if !same {
					continue
				}
				other := db.Attr[b].Classes[id]
				if len(other) > len(c) || (len(other) == len(c) && b < a) {
					dominated = true
				}
			}
			if !dominated {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessInts(out[i], out[j]) })
	return out
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
