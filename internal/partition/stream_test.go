package partition

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestStreamMatchesMaterialized(t *testing.T) {
	r := relation.PaperExample()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := Stream(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDatabase(r)
	if res.DB.NumRows != want.NumRows || res.DB.Arity() != want.Arity() {
		t.Fatalf("shape mismatch")
	}
	for a := range want.Attr {
		if !classesEqual(res.DB.Attr[a].Classes(), want.Attr[a].Classes()) {
			t.Errorf("π̂_%c = %v, want %v", 'A'+a, res.DB.Attr[a].Classes(), want.Attr[a].Classes())
		}
	}
	if res.Names[3] != "depname" {
		t.Errorf("Names = %v", res.Names)
	}
	// Domain sizes match the relation's.
	for a := 0; a < r.Arity(); a++ {
		if res.DomainSizes[a] != r.DomainSize(a) {
			t.Errorf("DomainSizes[%d] = %d, want %d", a, res.DomainSizes[a], r.DomainSize(a))
		}
	}
}

func TestStreamHeaderless(t *testing.T) {
	res, err := Stream(strings.NewReader("1,x\n2,x\n1,y\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.NumRows != 3 || res.Names[0] != "col0" {
		t.Errorf("headerless: rows=%d names=%v", res.DB.NumRows, res.Names)
	}
	if !classesEqual(res.DB.Attr[0].Classes(), [][]int{{0, 2}}) {
		t.Errorf("π̂_0 = %v", res.DB.Attr[0].Classes())
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := Stream(strings.NewReader(""), true); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Stream(strings.NewReader("a,b\n1\n"), true); err == nil {
		t.Error("ragged row accepted")
	}
	wide := strings.Repeat("x,", 300)
	if _, err := Stream(strings.NewReader(wide+"x\n"), false); err == nil {
		t.Error("overwide schema accepted")
	}
}

// TestStreamEndToEndDiscovery: the streamed database feeds the pipeline
// and yields the same FDs as the materialised path. Uses the core
// package indirectly via agree+maxsets to avoid an import cycle in tests.
func TestStreamEndToEndDiscovery(t *testing.T) {
	r := relation.PaperExample()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := Stream(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	mc := res.DB.MaximalClasses()
	want := NewDatabase(r).MaximalClasses()
	if len(mc) != len(want) {
		t.Fatalf("MC size %d, want %d", len(mc), len(want))
	}
	_ = context.Background()
}
