package partition

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// refStripped is the map-based reference the flat row store replaced:
// tuples grouped by projected code tuple in a hash map, classes of size
// ≥ 2 kept, canonical order (by smallest tuple index).
func refStripped(r *relation.Relation, x attrset.Set) [][]int {
	groups := make(map[string][]int)
	var order []string
	for t := 0; t < r.Rows(); t++ {
		key := ""
		x.ForEach(func(a attrset.Attr) { key += fmt.Sprintf("%d,", r.Code(t, a)) })
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], t)
	}
	out := [][]int{}
	for _, k := range order {
		if c := groups[k]; len(c) > 1 {
			out = append(out, c)
		}
	}
	// First-occurrence order is already canonical; sort anyway so the
	// reference does not depend on that observation.
	slices.SortFunc(out, cmpInts)
	return out
}

// checkLayout asserts the flat-layout invariants: offsets bracket the
// shared row store exactly, every class view is non-empty with ≥ 2
// tuples, and the materialised Classes agree with the Class views.
func checkLayout(t *testing.T, p *Partition) {
	t.Helper()
	if p.NumClasses() == 0 {
		if len(p.rows) != 0 {
			t.Fatalf("empty partition holds %d rows", len(p.rows))
		}
		return
	}
	if p.offs[0] != 0 || int(p.offs[len(p.offs)-1]) != len(p.rows) {
		t.Fatalf("offsets %v do not bracket %d rows", p.offs, len(p.rows))
	}
	total := 0
	for i := 0; i < p.NumClasses(); i++ {
		c := p.Class(i)
		if len(c) < 2 {
			t.Fatalf("class %d has %d tuples, want ≥ 2", i, len(c))
		}
		total += len(c)
	}
	if total != p.Size() {
		t.Fatalf("class views cover %d rows, Size() = %d", total, p.Size())
	}
	views := p.Classes()
	for i := 0; i < p.NumClasses(); i++ {
		if !slices.Equal(views[i], p.Class(i)) {
			t.Fatalf("Classes()[%d] != Class(%d)", i, i)
		}
	}
}

// TestQuickFlatLayoutMatchesMapReference pits the flat counting-layout
// partition constructors — Single, Of, and the Prober product — against
// the map-based reference on random relations.
func TestQuickFlatLayoutMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 150; iter++ {
		r := randRelation(rng)
		x := randSubset(rng, r.Arity())
		y := randSubset(rng, r.Arity())

		px := Of(r, x)
		checkLayout(t, px)
		if !classesEqual(px.Classes(), refStripped(r, x)) {
			t.Fatalf("Of(%v) = %v, map reference %v", x, px.Classes(), refStripped(r, x))
		}
		for a := 0; a < r.Arity(); a++ {
			ps := Single(r, a)
			checkLayout(t, ps)
			if !classesEqual(ps.Classes(), refStripped(r, attrset.Single(a))) {
				t.Fatalf("Single(%d) diverges from map reference", a)
			}
		}
		pr := NewProber(r.Rows())
		prod := pr.Product(px, Of(r, y))
		checkLayout(t, prod)
		if !classesEqual(prod.Classes(), refStripped(r, x.Union(y))) {
			t.Fatalf("Product(%v, %v) diverges from map reference", x, y)
		}
	}
}
