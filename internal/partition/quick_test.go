package partition

import (
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/relation"
)

// randRelation draws a small random relation for partition laws.
func randRelation(rng *rand.Rand) *relation.Relation {
	n := 1 + rng.Intn(4)
	rows := rng.Intn(30)
	cols := make([][]int, n)
	for a := range cols {
		cols[a] = make([]int, rows)
		dom := 1 + rng.Intn(5)
		for i := range cols[a] {
			cols[a][i] = rng.Intn(dom)
		}
	}
	r, err := relation.FromCodes(make([]string, n), cols)
	if err != nil {
		panic(err)
	}
	return r
}

func randSubset(rng *rand.Rand, n int) attrset.Set {
	var s attrset.Set
	for a := 0; a < n; a++ {
		if rng.Intn(2) == 0 {
			s.Add(a)
		}
	}
	return s
}

func TestQuickProductLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 150; iter++ {
		r := randRelation(rng)
		x := randSubset(rng, r.Arity())
		y := randSubset(rng, r.Arity())
		px, py := Of(r, x), Of(r, y)
		pxy := Product(px, py)

		// Product = partition of the union.
		direct := Of(r, x.Union(y))
		if !classesEqual(pxy.Classes(), direct.Classes()) {
			t.Fatalf("product != union partition for %v, %v", x, y)
		}
		// Idempotence.
		if !classesEqual(Product(px, px).Classes(), px.Classes()) {
			t.Fatalf("product not idempotent for %v", x)
		}
		// The product refines both factors.
		if !pxy.Refines(px) || !pxy.Refines(py) {
			t.Fatalf("product does not refine factors for %v, %v", x, y)
		}
		// Monotone statistics: |π_{X∪Y}| ≥ |π_X|, error decreases.
		if pxy.FullClassCount() < px.FullClassCount() {
			t.Fatalf("class count decreased under product")
		}
		if pxy.Error() > px.Error()+1e-12 {
			t.Fatalf("error increased under product")
		}
		// Couples shrink or stay under refinement.
		if pxy.Couples() > px.Couples() {
			t.Fatalf("couples grew under product")
		}
	}
}

func TestQuickRefinesReflexiveAndAntisymmetricOnCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 100; iter++ {
		r := randRelation(rng)
		x := randSubset(rng, r.Arity())
		y := randSubset(rng, r.Arity())
		px, py := Of(r, x), Of(r, y)
		if !px.Refines(px) {
			t.Fatal("Refines not reflexive")
		}
		// Superset attribute sets refine subset attribute sets.
		if x.SubsetOf(y) && !py.Refines(px) {
			t.Fatalf("π_%v should refine π_%v", y, x)
		}
		// Mutual refinement ⇒ identical canonical classes.
		if px.Refines(py) && py.Refines(px) {
			if !classesEqual(px.Classes(), py.Classes()) {
				t.Fatalf("mutually refining partitions differ: %v vs %v", px.Classes(), py.Classes())
			}
		}
	}
}

func TestQuickStatisticsIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 100; iter++ {
		r := randRelation(rng)
		for a := 0; a < r.Arity(); a++ {
			p := Single(r, a)
			if p.Size() < 2*p.NumClasses() {
				t.Fatal("stripped classes must have ≥ 2 tuples")
			}
			if p.FullClassCount() != r.DomainSize(a) && r.Rows() > 0 {
				t.Fatalf("full class count %d != domain size %d",
					p.FullClassCount(), r.DomainSize(a))
			}
			if p.IsUnique() != (p.Couples() == 0) {
				t.Fatal("IsUnique and Couples disagree")
			}
			// e(X)·|r| = ||π̂|| − |π̂| exactly.
			if r.Rows() > 0 {
				lhs := p.Error() * float64(r.Rows())
				rhs := float64(p.Size() - p.NumClasses())
				if lhs != rhs {
					t.Fatalf("error identity violated: %v != %v", lhs, rhs)
				}
			}
		}
	}
}

func TestQuickMCPreservesCoupleCoverage(t *testing.T) {
	// Every couple inside any stripped-partition class appears inside
	// some MC class (the substance of Lemma 1).
	rng := rand.New(rand.NewSource(36))
	for iter := 0; iter < 60; iter++ {
		r := randRelation(rng)
		db := NewDatabase(r)
		mc := db.MaximalClasses()
		inSameMC := func(t1, t2 int) bool {
			for _, c := range mc {
				has1, has2 := false, false
				for _, t := range c {
					if t == t1 {
						has1 = true
					}
					if t == t2 {
						has2 = true
					}
				}
				if has1 && has2 {
					return true
				}
			}
			return false
		}
		for _, p := range db.Attr {
			for _, cls := range p.Classes() {
				for i := 0; i < len(cls); i++ {
					for j := i + 1; j < len(cls); j++ {
						if !inSameMC(cls[i], cls[j]) {
							t.Fatalf("couple (%d,%d) lost by MC", cls[i], cls[j])
						}
					}
				}
			}
		}
	}
}
