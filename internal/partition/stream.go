package partition

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/attrset"
)

// StreamResult is a stripped partition database extracted directly from a
// CSV stream, plus the schema metadata discovery needs. No cell values
// are retained beyond per-column dictionaries — this is the paper's
// "database accesses are only performed during the computation of agree
// sets" reading made literal: one pass over the data, then the relation
// is never touched again (real-world Armstrong relations, which need
// original values, are unavailable on this path).
type StreamResult struct {
	DB *Database
	// Names are the attribute names (from the header, or col0, col1...).
	Names []string
	// DomainSizes[a] is the number of distinct values seen per column —
	// enough to evaluate the Proposition 1 existence condition even
	// without values.
	DomainSizes []int
}

// Stream reads a CSV relation and builds its stripped partition database
// in one pass, holding per-column dictionaries and tuple-id buckets but
// never whole rows. If header is true the first record names the
// attributes.
func Stream(r io.Reader, header bool) (*StreamResult, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1

	var names []string
	var dicts []map[string]int
	var buckets [][][]int
	rows := 0
	first := true

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("partition: streaming csv: %w", err)
		}
		if first {
			first = false
			if !attrset.Valid(len(rec)) {
				return nil, fmt.Errorf("partition: schema exceeds %d attributes", attrset.MaxAttrs)
			}
			names = make([]string, len(rec))
			if header {
				copy(names, rec)
			} else {
				for i := range rec {
					names[i] = "col" + strconv.Itoa(i)
				}
			}
			dicts = make([]map[string]int, len(names))
			buckets = make([][][]int, len(names))
			for a := range names {
				dicts[a] = make(map[string]int)
			}
			if header {
				continue
			}
		}
		if len(rec) != len(names) {
			return nil, fmt.Errorf("partition: row %d has %d fields, schema has %d",
				rows, len(rec), len(names))
		}
		for a, v := range rec {
			code, ok := dicts[a][v]
			if !ok {
				code = len(buckets[a])
				dicts[a][v] = code
				buckets[a] = append(buckets[a], nil)
			}
			buckets[a][code] = append(buckets[a][code], rows)
		}
		rows++
	}
	if names == nil {
		return nil, errors.New("partition: empty input")
	}

	res := &StreamResult{
		DB:          &Database{Attr: make([]*Partition, len(names)), NumRows: rows},
		Names:       names,
		DomainSizes: make([]int, len(names)),
	}
	for a := range names {
		res.DomainSizes[a] = len(buckets[a])
		// Codes are assigned in first-occurrence order, so buckets are
		// already sorted by smallest tuple index — canonical class order.
		p := &Partition{NumRows: rows}
		for _, b := range buckets[a] {
			if len(b) > 1 {
				p.appendClass(b)
			}
		}
		res.DB.Attr[a] = p
	}
	return res, nil
}
