package fastfds

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attrset"
	"repro/internal/fd"
	"repro/internal/relation"
	"repro/internal/tane"
)

func coversIdentical(a, b fd.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperExample(t *testing.T) {
	r := relation.PaperExample()
	res, err := Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	want := fd.MineBrute(r)
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FastFDs FDs =\n%s\nwant\n%s", res.FDs, want)
	}
	if res.Nodes == 0 || res.Elapsed <= 0 {
		t.Error("stats not populated")
	}
}

func TestConstantColumn(t *testing.T) {
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "k"}, {"2", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	want := fd.Cover{{LHS: attrset.Empty(), RHS: 1}}
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs = %v, want ∅ → B", res.FDs)
	}
}

func TestNoNontrivialFDs(t *testing.T) {
	// Two tuples disagreeing everywhere: each attribute's difference set
	// modulo A becomes empty → no FDs at all.
	r, err := relation.FromRows([]string{"a", "b"},
		[][]string{{"1", "x"}, {"2", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	want := fd.MineBrute(r)
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs = %v, want %v", res.FDs, want)
	}
}

func TestDegenerate(t *testing.T) {
	for _, rows := range [][][]string{{}, {{"1", "x"}}} {
		r, err := relation.FromRows([]string{"a", "b"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		want := fd.MineBrute(r)
		if !coversIdentical(res.FDs, want) {
			t.Errorf("rows=%d: FDs = %v, want %v", len(rows), res.FDs, want)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, relation.PaperExample()); err == nil {
		t.Error("cancelled context should abort")
	}
}

// TestPropertyThreeWayAgreement: FastFDs = Dep-Miner-brute = TANE on
// random relations, by exact canonical-cover equality.
func TestPropertyThreeWayAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(6)
		rows := rng.Intn(22)
		cols := make([][]int, n)
		for a := range cols {
			cols[a] = make([]int, rows)
			dom := 1 + rng.Intn(6)
			for i := range cols[a] {
				cols[a][i] = rng.Intn(dom)
			}
		}
		r, err := relation.FromCodes(make([]string, n), cols)
		if err != nil {
			t.Fatal(err)
		}
		r = r.Deduplicate()
		want := fd.MineBrute(r)
		res, err := Run(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !coversIdentical(res.FDs, want) {
			t.Fatalf("iter %d: FastFDs\n got %s\nwant %s\nrelation:\n%v",
				iter, res.FDs, want, r)
		}
		tn, err := tane.Run(context.Background(), r, tane.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !coversIdentical(res.FDs, tn.FDs) {
			t.Fatalf("iter %d: FastFDs and TANE disagree", iter)
		}
	}
}

func TestOrderByCoverage(t *testing.T) {
	diff := attrset.Family{
		attrset.New(0, 1),
		attrset.New(1, 2),
		attrset.New(1),
	}
	order := orderByCoverage([]int{0, 1, 2, 3}, diff)
	// 1 covers 3 sets, 0 and 2 cover 1 each (tie → index order), 3
	// covers none and is dropped.
	want := []int{1, 0, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFromAgreeSetsDirect(t *testing.T) {
	// Paper agree sets → paper FDs, bypassing the relation.
	sets := attrset.Family{
		attrset.Empty(),
		attrset.New(0),       // A
		attrset.New(1, 3, 4), // BDE
		attrset.New(2, 4),    // CE
		attrset.New(4),       // E
	}
	res, err := FromAgreeSets(context.Background(), sets, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := fd.MineBrute(relation.PaperExample())
	if !coversIdentical(res.FDs, want) {
		t.Errorf("FDs =\n%s\nwant\n%s", res.FDs, want)
	}
}
