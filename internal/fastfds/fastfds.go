// Package fastfds implements a depth-first, heuristic-driven miner for
// minimal functional dependencies over difference sets — the approach of
// FastFDs (Wyss, Giannella, Robertson, DaWaK 2001), which builds directly
// on Dep-Miner's agree-set machinery and is the natural "further work"
// successor of the paper this repository reproduces.
//
// Where Dep-Miner computes lhs(dep(r),A) as the minimal transversals of
// the hypergraph cmax(dep(r),A) with a levelwise Apriori search, FastFDs
// searches the same space depth-first over the *difference sets modulo A*:
//
//	D_A = { E \ {A} | E ∈ cmax(dep(r),A) }
//
// A minimal cover of D_A (a minimal attribute set intersecting every
// member) is exactly a non-trivial minimal LHS for A. The DFS orders
// attributes by how many remaining difference sets they cover (ties by
// index), branches on one attribute at a time, and prunes when no ordered
// attribute can cover the remaining sets. The levelwise search can stall
// on wide candidate levels; the DFS's memory use is bounded by the search
// depth instead.
//
// The package reuses the stripped-partition agree-set computation of
// internal/agree, so the two miners share everything up to the lhs step —
// making FastFDs both an extension and a cross-validation oracle for the
// transversal code.
package fastfds

import (
	"context"
	"fmt"
	"slices"
	"time"

	"repro/internal/agree"
	"repro/internal/attrset"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/maxsets"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Options configure a FastFDs run.
type Options struct {
	// Budget governs the run: the agree-set computation charges couples
	// and sets produced, and the DFS charges nodes visited. On overrun
	// the partial Result (covers of the attributes completed, Partial =
	// true) is returned with the guard error. nil means ungoverned.
	Budget *guard.Budget
}

// Result is the outcome of a FastFDs run.
type Result struct {
	// FDs is the canonical cover of minimal non-trivial FDs, sorted.
	FDs fd.Cover
	// Nodes counts DFS tree nodes visited across all attributes.
	Nodes int
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Partial reports that the search stopped early on a budget or
	// deadline overrun (or a contained panic): FDs holds only the RHS
	// attributes fully searched before the cutoff. Always accompanied by
	// a non-nil error.
	Partial bool
}

// Run mines all minimal non-trivial FDs of the relation.
func Run(ctx context.Context, r *relation.Relation) (*Result, error) {
	return RunOpts(ctx, r, Options{})
}

// RunOpts is Run under explicit options. Panics anywhere in the miner are
// contained at this boundary and surface as a *guard.PanicError.
func RunOpts(ctx context.Context, r *relation.Relation, opts Options) (res *Result, err error) {
	start := time.Now()
	res = &Result{}
	defer func() {
		if p := recover(); p != nil {
			res.Partial = true
			res.Elapsed = time.Since(start)
			err = guard.NewPanicError("fastfds", p)
		}
	}()
	db := partition.NewDatabase(r)
	agr, aerr := agree.Identifiers(ctx, db, agree.Options{Budget: opts.Budget})
	if aerr != nil {
		if guard.Governed(aerr) {
			res.Partial = true
			res.Elapsed = time.Since(start)
			return res, aerr
		}
		return nil, aerr
	}
	inner, derr := FromAgreeSetsOpts(ctx, agr.Sets, r.Arity(), opts)
	if inner != nil {
		inner.Elapsed = time.Since(start)
		res = inner
	}
	return res, derr
}

// FromAgreeSets mines the cover from precomputed agree sets.
func FromAgreeSets(ctx context.Context, agreeSets attrset.Family, arity int) (*Result, error) {
	return FromAgreeSetsOpts(ctx, agreeSets, arity, Options{})
}

// FromAgreeSetsOpts is FromAgreeSets under explicit options.
func FromAgreeSetsOpts(ctx context.Context, agreeSets attrset.Family, arity int, opts Options) (*Result, error) {
	ms := maxsets.Compute(agreeSets, arity)
	res := &Result{}
	for a := 0; a < arity; a++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fastfds: cancelled: %w", err)
		}
		if ferr := faultinject.Fire(faultinject.FastFDsAttr); ferr != nil {
			return failFastFDs(res, ferr)
		}
		// Difference sets modulo A.
		diff := make(attrset.Family, 0, len(ms.CMax[a]))
		empty := false
		for _, e := range ms.CMax[a] {
			d := e.Without(a)
			if d.IsEmpty() {
				// max set R\{A}: nothing but A itself determines A.
				empty = true
				break
			}
			diff = append(diff, d)
		}
		if empty {
			continue
		}
		if len(diff) == 0 {
			// No difference set: every couple agrees on A, i.e. A is
			// constant; ∅ → A is the (unique) minimal FD.
			res.FDs = append(res.FDs, fd.FD{LHS: attrset.Empty(), RHS: a})
			continue
		}
		// Keep only ⊆-minimal difference sets: any cover of a set also
		// covers its supersets.
		diff = diff.Minimal()
		covers, cerr := findCovers(ctx, diff, arity, &res.Nodes, opts.Budget)
		if cerr != nil {
			return failFastFDs(res, cerr)
		}
		for _, x := range covers {
			res.FDs = append(res.FDs, fd.FD{LHS: x, RHS: a})
		}
	}
	res.FDs.Sort()
	return res, nil
}

// failFastFDs finalises an interrupted search: governed errors keep the
// FDs mined so far as a partial result, anything else drops them.
func failFastFDs(res *Result, err error) (*Result, error) {
	if !guard.Governed(err) {
		return nil, err
	}
	res.Partial = true
	res.FDs.Sort()
	return res, err
}

// chargeEvery is how many DFS nodes accumulate between budget charges:
// coarse enough that an ungoverned run pays one pointer test per node,
// fine enough that an overrun is caught within ~one batch.
const chargeEvery = 1024

// searchState carries the per-attribute DFS context.
type searchState struct {
	diff    attrset.Family // minimal difference sets to cover
	out     attrset.Family
	nodes   *int
	budget  *guard.Budget
	pending int // nodes visited since the last budget charge
}

// findCovers returns all minimal covers of the difference-set family.
func findCovers(ctx context.Context, diff attrset.Family, arity int, nodes *int, b *guard.Budget) (attrset.Family, error) {
	st := &searchState{diff: diff, nodes: nodes, budget: b}
	// Initial ordering: attributes of the union, by descending cover
	// count (FastFDs' heuristic), ties by ascending index.
	var universe attrset.Set
	for _, d := range diff {
		universe = universe.Union(d)
	}
	order := orderByCoverage(universe.Attrs(), diff)
	uncovered := make([]int, len(diff))
	for i := range uncovered {
		uncovered[i] = i
	}
	err := st.dfs(attrset.Empty(), order, uncovered)
	if err == nil && st.budget != nil && st.pending > 0 {
		err = st.budget.Charge("fastfds", st.pending)
		st.pending = 0
	}
	if err != nil {
		return nil, err
	}
	st.out.Sort()
	return st.out, nil
}

// orderByCoverage sorts candidate attributes by how many of the given
// difference sets they cover, descending; ties broken by index. Attributes
// covering nothing are dropped.
func orderByCoverage(attrs []attrset.Attr, diff attrset.Family) []attrset.Attr {
	type ranked struct {
		a     attrset.Attr
		count int
	}
	rs := make([]ranked, 0, len(attrs))
	for _, a := range attrs {
		n := 0
		for _, d := range diff {
			if d.Contains(a) {
				n++
			}
		}
		if n > 0 {
			rs = append(rs, ranked{a, n})
		}
	}
	slices.SortFunc(rs, func(x, y ranked) int {
		if x.count != y.count {
			return y.count - x.count
		}
		return x.a - y.a
	})
	out := make([]attrset.Attr, len(rs))
	for i, r := range rs {
		out[i] = r.a
	}
	return out
}

// dfs explores extensions of path. order lists the attributes still
// allowed (in heuristic order); uncovered indexes st.diff members not yet
// intersected by path.
func (st *searchState) dfs(path attrset.Set, order []attrset.Attr, uncovered []int) error {
	*st.nodes++
	if st.budget != nil {
		st.pending++
		if st.pending >= chargeEvery {
			n := st.pending
			st.pending = 0
			if err := st.budget.Charge("fastfds", n); err != nil {
				return err
			}
		}
	}
	if len(uncovered) == 0 {
		if st.isMinimal(path) {
			st.out = append(st.out, path)
		}
		return nil
	}
	if len(order) == 0 {
		return nil // dead end: remaining sets cannot be covered
	}
	for i, a := range order {
		// Only attributes after a (in the current ordering) may extend
		// the branch — this makes each cover reachable exactly once per
		// ordering chain.
		rest := order[i+1:]
		next := make([]int, 0, len(uncovered))
		for _, di := range uncovered {
			if !st.diff[di].Contains(a) {
				next = append(next, di)
			}
		}
		if len(next) == len(uncovered) {
			continue // a covers nothing new; skip (it is dropped by reordering anyway)
		}
		// Re-rank the remaining attributes against the still-uncovered
		// sets (the FastFDs heuristic re-orders per node).
		reordered := orderByCoverageIdx(rest, st.diff, next)
		if err := st.dfs(path.With(a), reordered, next); err != nil {
			return err
		}
	}
	return nil
}

// orderByCoverageIdx ranks attrs by coverage of the indexed subset of
// diff.
func orderByCoverageIdx(attrs []attrset.Attr, diff attrset.Family, idx []int) []attrset.Attr {
	sub := make(attrset.Family, len(idx))
	for i, di := range idx {
		sub[i] = diff[di]
	}
	return orderByCoverage(attrs, sub)
}

// isMinimal reports whether every attribute of path covers some
// difference set that no other attribute of path covers.
func (st *searchState) isMinimal(path attrset.Set) bool {
	ok := true
	path.ForEach(func(a attrset.Attr) {
		reduced := path.Without(a)
		for _, d := range st.diff {
			if !d.Intersects(reduced) {
				return // removing a breaks coverage of d: a is needed
			}
		}
		ok = false // path \ {a} still covers everything
	})
	return ok
}
