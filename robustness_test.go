package depminer

// The robustness suite: fault injection at every hook point, typed-error
// unwinding, partial-result integrity, budget and deadline governance,
// graceful degradation, pathological inputs, and goroutine-leak freedom.
// Run it under -race: the containment boundaries and the shared budget
// are exactly where races would hide.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/leakcheck"
)

// errInjected is the sentinel every error-injection test plants and then
// expects back, possibly wrapped, from the miner under test.
var errInjected = errors.New("injected fault")

// runForPoint maps a hook point to a miner invocation that crosses it,
// returning the run's error and whether a partial result accompanied it.
func runForPoint(t *testing.T, point string) (error, bool) {
	t.Helper()
	ctx := context.Background()
	r := PaperExample()
	switch point {
	case faultinject.AgreeStride:
		res, err := Discover(ctx, r, Options{Algorithm: DepMiner2, Workers: 2})
		return err, res != nil && res.Partial
	case faultinject.TANELevel:
		res, err := DiscoverTANE(ctx, r, TANEOptions{})
		return err, res != nil && res.Partial
	case faultinject.PstoreEvict:
		// A 1-byte cap makes every Put evict its own partition.
		res, err := DiscoverTANE(ctx, r, TANEOptions{MaxPartitionBytes: 1})
		return err, res != nil && res.Partial
	case faultinject.PstoreRecompute:
		// Exact mode never re-reads a partition on the paper example (its
		// lattice dies at level 2), but approximate mode fetches every
		// level's partitions for the g₃ tests — under a 1-byte cap those
		// Gets miss and recompute.
		res, err := DiscoverTANE(ctx, r, TANEOptions{Epsilon: 0.05, MaxPartitionBytes: 1})
		return err, res != nil && res.Partial
	case faultinject.KeysLevel:
		res, err := DiscoverKeys(ctx, r)
		return err, res != nil && res.Partial
	case faultinject.INDLevel:
		res, err := DiscoverINDs(ctx, []*Relation{r}, INDOptions{})
		return err, res != nil && res.Partial
	case faultinject.FastFDsAttr:
		res, err := DiscoverFastFDs(ctx, r)
		return err, res != nil && res.Partial
	case faultinject.ExtsortFlush, faultinject.ExtsortRead, faultinject.ExtsortMerge:
		// A 1-byte spill threshold clamps to one record per worker, so
		// every absorb spills and the final merge reads disk runs: all
		// three extsort points are crossed.
		res, err := Discover(ctx, r, Options{Workers: 2, MaxAgreeBytes: 1})
		return err, res != nil && res.Partial
	default:
		res, err := Discover(ctx, r, Options{Workers: 2})
		return err, res != nil && res.Partial
	}
}

// TestFaultInjectionErrors arms every hook point with an error and
// asserts it unwinds out of the owning miner, with no goroutine leaked.
func TestFaultInjectionErrors(t *testing.T) {
	leakcheck.Check(t)
	for _, point := range faultinject.Points() {
		t.Run(point, func(t *testing.T) {
			leakcheck.Check(t)
			faultinject.Set(point, faultinject.FailWith(errInjected))
			defer faultinject.Reset()
			err, _ := runForPoint(t, point)
			if !errors.Is(err, errInjected) {
				t.Fatalf("err = %v, want the injected sentinel", err)
			}
		})
	}
}

// TestFaultInjectionPanics arms every hook point with a panic and asserts
// it is contained into a *guard.PanicError wrapping guard.ErrPanic, with
// a partial result retained and no goroutine leaked.
func TestFaultInjectionPanics(t *testing.T) {
	leakcheck.Check(t)
	for _, point := range faultinject.Points() {
		t.Run(point, func(t *testing.T) {
			leakcheck.Check(t)
			faultinject.Set(point, faultinject.PanicWith("injected panic at "+point))
			defer faultinject.Reset()
			err, partial := runForPoint(t, point)
			if !errors.Is(err, guard.ErrPanic) {
				t.Fatalf("err = %v, want a contained panic", err)
			}
			var pe *guard.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err is %T, want *guard.PanicError", err)
			}
			if pe.Value != "injected panic at "+point {
				t.Errorf("panic value = %v", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("no stack captured")
			}
			if !partial {
				t.Error("contained panic did not surface a partial result")
			}
		})
	}
}

// TestFaultInjectionMidRun injects after the first crossing of a worker
// point, so a partially filled accumulator exists when the fault lands.
func TestFaultInjectionMidRun(t *testing.T) {
	leakcheck.Check(t)
	faultinject.Set(faultinject.AgreeStride, faultinject.After(1, faultinject.PanicWith("late")))
	defer faultinject.Reset()
	r, err := Generate(GenerateSpec{Attrs: 6, Rows: 3000, Correlation: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, derr := Discover(context.Background(), r, Options{Algorithm: DepMiner2, Workers: 2, Armstrong: ArmstrongNone})
	if !errors.Is(derr, guard.ErrPanic) {
		t.Fatalf("err = %v, want contained panic", derr)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
}

// TestPstoreFaultMidSearch injects failures into the partition store's
// eviction and recompute paths after the first few crossings, so a
// tightly capped TANE search dies mid-level with completed levels in
// hand. The run must surface a governed partial result — a subset of the
// full cover, every FD of which holds on the instance — never a raw
// panic or a wrong dependency.
func TestPstoreFaultMidSearch(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	r, err := Generate(GenerateSpec{Attrs: 8, Rows: 400, Correlation: 0.6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DiscoverTANE(ctx, r, TANEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inCover := map[FD]bool{}
	for _, f := range full.FDs {
		inCover[f] = true
	}
	for _, point := range []string{faultinject.PstoreEvict, faultinject.PstoreRecompute} {
		for _, after := range []int{0, 3, 25} {
			t.Run(fmt.Sprintf("%s/after=%d", point, after), func(t *testing.T) {
				leakcheck.Check(t)
				faultinject.Set(point, faultinject.After(after, faultinject.PanicWith("late pstore fault")))
				defer faultinject.Reset()
				res, derr := DiscoverTANE(ctx, r, TANEOptions{MaxPartitionBytes: 1, Workers: 2})
				if derr == nil {
					t.Fatal("1-byte cap never crossed the armed hook")
				}
				if !errors.Is(derr, guard.ErrPanic) {
					t.Fatalf("err = %v, want contained panic", derr)
				}
				if res == nil || !res.Partial {
					t.Fatal("no partial result")
				}
				for _, f := range res.FDs {
					if !inCover[f] {
						t.Errorf("partial cover invents %s, absent from the full cover", f)
					}
				}
				if ok, bad := Verify(r, res.FDs); !ok {
					t.Errorf("partial cover contains %s, which does not hold", bad)
				}
			})
		}
	}
	// A plain injected error (not governed) must drop the result entirely.
	faultinject.Set(faultinject.PstoreEvict, faultinject.FailWith(errInjected))
	defer faultinject.Reset()
	res, derr := DiscoverTANE(ctx, r, TANEOptions{MaxPartitionBytes: 1})
	if !errors.Is(derr, errInjected) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result with the injected sentinel", res, derr)
	}
}

// TestBudgetOverrunPartialResult exhausts a tiny unit budget and checks
// the typed error, the phase attribution, and the partial result.
func TestBudgetOverrunPartialResult(t *testing.T) {
	leakcheck.Check(t)
	r := PaperExample()
	b := NewBudget(Limits{Units: 3})
	res, err := Discover(context.Background(), r, Options{Budget: b})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	var ge *guard.Error
	if !errors.As(err, &ge) {
		t.Fatalf("err is %T, want *guard.Error", err)
	}
	if ge.Phase == "" {
		t.Error("no phase attributed")
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
	if b.Used() <= 3 {
		t.Errorf("Used = %d, want the overrunning charge recorded", b.Used())
	}
}

// TestDeadlineOverrunPartialResult runs under an already-expired deadline.
func TestDeadlineOverrunPartialResult(t *testing.T) {
	leakcheck.Check(t)
	r := PaperExample()
	b := NewBudget(Limits{Deadline: time.Now().Add(-time.Second)})
	res, err := Discover(context.Background(), r, Options{Budget: b})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("no partial result")
	}
}

// TestBudgetAcrossMiners gives every miner a budget too small to finish
// and checks each returns its typed partial result.
func TestBudgetAcrossMiners(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	r, err := Generate(GenerateSpec{Attrs: 8, Rows: 500, Correlation: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("tane", func(t *testing.T) {
		res, err := DiscoverTANE(ctx, r, TANEOptions{Budget: NewBudget(Limits{Units: 5})})
		if !errors.Is(err, ErrBudget) || res == nil || !res.Partial {
			t.Fatalf("err=%v res=%+v", err, res)
		}
	})
	t.Run("keys", func(t *testing.T) {
		res, err := DiscoverKeysOpts(ctx, r, KeysOptions{Budget: NewBudget(Limits{Units: 2})})
		if !errors.Is(err, ErrBudget) || res == nil || !res.Partial {
			t.Fatalf("err=%v res=%+v", err, res)
		}
	})
	t.Run("fastfds", func(t *testing.T) {
		res, err := DiscoverFastFDsOpts(ctx, r, FastFDsOptions{Budget: NewBudget(Limits{Units: 5})})
		if !errors.Is(err, ErrBudget) || res == nil || !res.Partial {
			t.Fatalf("err=%v res=%+v", err, res)
		}
	})
	t.Run("ind", func(t *testing.T) {
		res, err := DiscoverINDs(ctx, []*Relation{r}, INDOptions{Budget: NewBudget(Limits{Units: 5})})
		if !errors.Is(err, ErrBudget) || res == nil || !res.Partial {
			t.Fatalf("err=%v res=%+v", err, res)
		}
	})
}

// TestBudgetSufficientIsIdentical checks governance is observation-only:
// a run that finishes within budget returns exactly the ungoverned result.
func TestBudgetSufficientIsIdentical(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	r := PaperExample()
	plain, err := Discover(ctx, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(Limits{Units: 1 << 30, Deadline: time.Now().Add(time.Hour)})
	governed, err := Discover(ctx, r, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if governed.Partial {
		t.Error("within-budget run marked partial")
	}
	if fmt.Sprint(plain.FDs) != fmt.Sprint(governed.FDs) {
		t.Errorf("governed cover differs:\n%v\n%v", plain.FDs, governed.FDs)
	}
	if fmt.Sprint(plain.AgreeSets) != fmt.Sprint(governed.AgreeSets) {
		t.Error("governed agree sets differ")
	}
	if b.Used() == 0 {
		t.Error("budget not charged at all")
	}
}

// TestGracefulDegradation forces the Algorithm 2 → 3 fallback with a
// 1-couple threshold and checks the cover is unchanged and the switch is
// recorded in Notes.
func TestGracefulDegradation(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	r := PaperExample()
	plain, err := Discover(ctx, r, Options{Armstrong: ArmstrongNone})
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Discover(ctx, r, Options{Armstrong: ArmstrongNone, MaxCouples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded.Notes) != 1 || !strings.Contains(degraded.Notes[0], "degraded") {
		t.Fatalf("Notes = %v", degraded.Notes)
	}
	if fmt.Sprint(plain.FDs) != fmt.Sprint(degraded.FDs) {
		t.Errorf("degraded cover differs:\n%v\n%v", plain.FDs, degraded.FDs)
	}
	// A threshold the couple space fits under must not degrade.
	roomy, err := Discover(ctx, r, Options{Armstrong: ArmstrongNone, MaxCouples: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(roomy.Notes) != 0 {
		t.Errorf("unexpected Notes = %v", roomy.Notes)
	}
}

// TestOptionsValidation checks malformed Options fail fast with the typed
// sentinel, for both pipeline entry points.
func TestOptionsValidation(t *testing.T) {
	ctx := context.Background()
	r := PaperExample()
	bad := []Options{
		{Workers: -1},
		{ChunkSize: -5},
		{MaxCouples: -1},
		{MaxAgreeBytes: -8},
		{Algorithm: Algorithm(99)},
		{Armstrong: ArmstrongMode(-2)},
	}
	for _, opts := range bad {
		if _, err := Discover(ctx, r, opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Discover(%+v) err = %v, want ErrInvalidOptions", opts, err)
		}
	}
	// DiscoverFromDatabase additionally rejects the naive algorithm.
	db := mustStream(t, r)
	if _, err := DiscoverStreamed(ctx, db, Options{Algorithm: NaiveBaseline}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("streamed naive err = %v, want ErrInvalidOptions", err)
	}
	if _, err := DiscoverStreamed(ctx, db, Options{Workers: -3}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("streamed bad workers err = %v, want ErrInvalidOptions", err)
	}
	// Valid options still validate clean.
	if err := (core.Options{Workers: 4, ChunkSize: 100}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func mustStream(t *testing.T, r *Relation) *StreamedDatabase {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	db, err := StreamCSV(strings.NewReader(sb.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// pathological returns the degenerate relations every miner must survive.
func pathological(t *testing.T) map[string]*Relation {
	t.Helper()
	mk := func(names []string, rows [][]string) *Relation {
		r, err := NewRelation(names, rows)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Width = MaxAttrs: two rows agreeing on column 0 only. (Agreeing on
	// many columns would be a combinatorial bomb for the levelwise
	// searches — e.g. 128 shared columns give the key search a 2^128
	// lattice — which is the budget's job to stop, not this suite's.)
	wideNames := make([]string, MaxAttrs)
	wideRow1 := make([]string, MaxAttrs)
	wideRow2 := make([]string, MaxAttrs)
	for i := range wideNames {
		wideNames[i] = fmt.Sprintf("c%d", i)
		wideRow1[i] = "x"
		if i == 0 {
			wideRow2[i] = "x"
		} else {
			wideRow2[i] = fmt.Sprintf("y%d", i)
		}
	}
	return map[string]*Relation{
		"all-identical": mk([]string{"a", "b", "c"}, [][]string{
			{"1", "1", "1"}, {"1", "1", "1"}, {"1", "1", "1"},
		}),
		"all-distinct": mk([]string{"a", "b", "c"}, [][]string{
			{"1", "4", "7"}, {"2", "5", "8"}, {"3", "6", "9"},
		}),
		"one-row": mk([]string{"a", "b"}, [][]string{{"1", "2"}}),
		"zero-rows": mk([]string{"a", "b"}, nil),
		"max-width": mk(wideNames, [][]string{wideRow1, wideRow2}),
	}
}

// TestPathologicalInputs runs every miner over every degenerate relation:
// nothing may error, panic, or leak, and the FD miners must agree with
// each other on the cover size.
func TestPathologicalInputs(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	for name, r := range pathological(t) {
		t.Run(name, func(t *testing.T) {
			leakcheck.Check(t)
			dm, err := Discover(ctx, r, Options{Armstrong: ArmstrongNone})
			if err != nil {
				t.Fatalf("depminer: %v", err)
			}
			dm2, err := Discover(ctx, r, Options{Algorithm: DepMiner2, Armstrong: ArmstrongNone})
			if err != nil {
				t.Fatalf("depminer2: %v", err)
			}
			ff, err := DiscoverFastFDs(ctx, r)
			if err != nil {
				t.Fatalf("fastfds: %v", err)
			}
			tn, err := DiscoverTANE(ctx, r, TANEOptions{})
			if err != nil {
				t.Fatalf("tane: %v", err)
			}
			if fmt.Sprint(dm.FDs) != fmt.Sprint(dm2.FDs) ||
				fmt.Sprint(dm.FDs) != fmt.Sprint(ff.FDs) ||
				fmt.Sprint(dm.FDs) != fmt.Sprint(tn.FDs) {
				t.Errorf("covers disagree: depminer=%d depminer2=%d fastfds=%d tane=%d",
					len(dm.FDs), len(dm2.FDs), len(ff.FDs), len(tn.FDs))
			}
			if _, err := DiscoverKeys(ctx, r); err != nil {
				t.Fatalf("keys: %v", err)
			}
			if _, err := DiscoverINDs(ctx, []*Relation{r}, INDOptions{MaxArity: 2}); err != nil {
				t.Fatalf("ind: %v", err)
			}
		})
	}
}

// TestLeakFreedomOnCancellation cancels every miner mid-run and checks
// all workers unwind.
func TestLeakFreedomOnCancellation(t *testing.T) {
	leakcheck.Check(t)
	r, err := Generate(GenerateSpec{Attrs: 10, Rows: 2000, Correlation: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Discover(ctx, r, Options{Workers: 4}); err == nil {
		t.Error("cancelled Discover succeeded")
	}
	if _, err := DiscoverTANE(ctx, r, TANEOptions{}); err == nil {
		t.Error("cancelled TANE succeeded")
	}
	if _, err := DiscoverFastFDs(ctx, r); err == nil {
		t.Error("cancelled FastFDs succeeded")
	}
	if _, err := DiscoverKeys(ctx, r); err == nil {
		t.Error("cancelled keys succeeded")
	}
	if _, err := DiscoverINDs(ctx, []*Relation{r}, INDOptions{}); err == nil {
		t.Error("cancelled INDs succeeded")
	}
}

// TestCancellationReturnsNoPartial pins the other half of the contract:
// cancellations are NOT governed errors and must not return results.
func TestCancellationReturnsNoPartial(t *testing.T) {
	leakcheck.Check(t)
	r := PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Discover(ctx, r, Options{})
	if err == nil || res != nil {
		t.Fatalf("res=%v err=%v, want nil result with error", res, err)
	}
	if guard.Governed(err) {
		t.Errorf("cancellation classified as governed: %v", err)
	}
}
