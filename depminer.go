// Package depminer is a from-scratch Go implementation of Dep-Miner
// (Lopes, Petit, Lakhal: "Efficient Discovery of Functional Dependencies
// and Armstrong Relations", EDBT 2000): discovery of all minimal
// non-trivial functional dependencies of a relation instance, combined —
// at no extra cost — with the construction of a real-world Armstrong
// relation, a small sample of the original data satisfying exactly the
// same dependencies.
//
// The package also ships the TANE baseline the paper compares against
// (including its approximate-dependency mode), the synthetic benchmark
// generator of the paper's evaluation, and schema normalisation (3NF/BCNF)
// for the logical-tuning workflow the paper motivates.
//
// # Quick start
//
//	r, err := depminer.LoadCSVFile("employees.csv", true)
//	if err != nil { ... }
//	res, err := depminer.Discover(ctx, r, depminer.Options{})
//	if err != nil { ... }
//	for _, f := range res.FDs {
//	    fmt.Println(f.Names(r.Names()))
//	}
//	fmt.Println(res.Armstrong) // the sample relation
//
// The heavy lifting lives in the internal packages (one per subsystem of
// the paper — see DESIGN.md); this package is the stable surface.
package depminer

import (
	"context"
	"io"

	"repro/internal/armstrong"
	"repro/internal/attrset"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/durable"
	"repro/internal/fastfds"
	"repro/internal/fd"
	"repro/internal/guard"
	"repro/internal/incremental"
	"repro/internal/ind"
	"repro/internal/keys"
	"repro/internal/normalize"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/tane"
)

// Relation is a dictionary-encoded in-memory relation instance.
type Relation = relation.Relation

// AttrSet is a set of attribute (column) indices, the currency of all
// discovery results.
type AttrSet = attrset.Set

// AttrSetFamily is an ordered collection of attribute sets.
type AttrSetFamily = attrset.Family

// FD is a functional dependency X → A with a single right-hand-side
// attribute.
type FD = fd.FD

// Cover is a list of FDs interpreted as a dependency set.
type Cover = fd.Cover

// MaxAttrs is the largest schema width supported (attribute sets are
// fixed-width bit vectors).
const MaxAttrs = attrset.MaxAttrs

// NewRelation builds a relation from attribute names and string rows.
func NewRelation(names []string, rows [][]string) (*Relation, error) {
	return relation.FromRows(names, rows)
}

// LoadCSV reads a relation from CSV data. If header is true, the first
// record names the attributes.
func LoadCSV(r io.Reader, header bool) (*Relation, error) {
	return relation.Load(r, header)
}

// LoadCSVFile reads a relation from a CSV file.
func LoadCSVFile(path string, header bool) (*Relation, error) {
	return relation.LoadFile(path, header)
}

// PaperExample returns the 7-tuple employee relation used as the running
// example throughout the Dep-Miner paper.
func PaperExample() *Relation { return relation.PaperExample() }

// Algorithm selects the agree-set computation of the Dep-Miner pipeline.
type Algorithm = core.AgreeAlgorithm

const (
	// DepMiner is Algorithm 2 of the paper (couples of maximal
	// equivalence classes) — the evaluation's "Dep-Miner".
	DepMiner = core.AgreeCouples
	// DepMiner2 is Algorithm 3 (equivalence-class identifier
	// intersection) — the evaluation's "Dep-Miner 2", preferable on
	// large or highly correlated relations.
	DepMiner2 = core.AgreeIdentifiers
	// NaiveBaseline is the O(n·p²) pairwise scan, for comparison only.
	NaiveBaseline = core.AgreeNaive
)

// ArmstrongMode selects how the Armstrong relation is built.
type ArmstrongMode = core.ArmstrongMode

const (
	// ArmstrongRealWorldOrSynthetic builds a real-world Armstrong
	// relation, falling back to the synthetic integer construction if
	// some attribute lacks distinct values (the default).
	ArmstrongRealWorldOrSynthetic = core.ArmstrongRealWorldOrSynthetic
	// ArmstrongRealWorld fails if the real-world construction is
	// impossible (paper Proposition 1).
	ArmstrongRealWorld = core.ArmstrongRealWorld
	// ArmstrongSynthetic always uses the integer construction.
	ArmstrongSynthetic = core.ArmstrongSynthetic
	// ArmstrongNone skips the Armstrong relation.
	ArmstrongNone = core.ArmstrongNone
)

// Options configure Discover. The zero value runs the paper's Dep-Miner
// configuration on all cores and builds a real-world Armstrong relation
// with synthetic fallback. Options.Workers caps the worker pool (1 runs
// the sequential reference path); the Result is byte-identical for every
// worker count.
type Options = core.Options

// Limits bound a governed run: a wall-clock Deadline and/or a Units
// budget (a shared pool charged in each phase's natural units — couples,
// agree sets, candidate-level widths, DFS nodes). Zero values mean
// unlimited.
type Limits = guard.Limits

// Budget is a shared, concurrency-safe resource budget. Attach one to
// Options.Budget (and friends) to govern a run; on overrun the miners
// return the work completed so far as a partial result together with a
// typed error (ErrBudget or ErrDeadline). A nil Budget is valid and means
// ungoverned.
type Budget = guard.Budget

// NewBudget creates a budget from limits.
func NewBudget(l Limits) *Budget { return guard.New(l) }

// Typed failure sentinels, matched with errors.Is. Governed runs that
// trip a limit return the partial result alongside an error wrapping
// ErrBudget or ErrDeadline; contained panics wrap ErrPanic; malformed
// Options are rejected up front with an error wrapping ErrInvalidOptions.
var (
	ErrBudget         = guard.ErrBudget
	ErrDeadline       = guard.ErrDeadline
	ErrPanic          = guard.ErrPanic
	ErrInvalidOptions = core.ErrInvalidOptions
)

// Result is the outcome of a discovery run: the canonical FD cover, the
// intermediate set families (agree sets, maximal sets, per-attribute
// LHSs), the Armstrong relation and per-phase timings.
type Result = core.Result

// Discover runs the Dep-Miner pipeline: agree sets from stripped
// partitions, maximal sets, minimal transversals, minimal FDs, and the
// Armstrong relation.
func Discover(ctx context.Context, r *Relation, opts Options) (*Result, error) {
	return core.Discover(ctx, r, opts)
}

// TANEOptions configure DiscoverTANE.
type TANEOptions = tane.Options

// TANEResult is the outcome of a TANE run.
type TANEResult = tane.Result

// DiscoverTANE runs the TANE baseline (Huhtala et al. 1998): levelwise
// lattice search with partition products and rhs⁺ pruning. With
// Epsilon > 0 it discovers approximate dependencies (g₃ error ≤ ε).
func DiscoverTANE(ctx context.Context, r *Relation, opts TANEOptions) (*TANEResult, error) {
	return tane.Run(ctx, r, opts)
}

// RealWorldArmstrong builds a real-world Armstrong relation for the given
// relation and maximal sets (as found in Result.MaxSets). It fails with a
// descriptive error when paper Proposition 1 does not hold.
func RealWorldArmstrong(r *Relation, maxSets AttrSetFamily) (*Relation, error) {
	return armstrong.RealWorld(r, maxSets)
}

// SyntheticArmstrong builds the classical integer Armstrong relation for
// the given maximal sets.
func SyntheticArmstrong(maxSets AttrSetFamily, names []string) (*Relation, error) {
	return armstrong.Synthetic(maxSets, names)
}

// GenerateSpec describes a synthetic benchmark relation (paper §5.2):
// |R| attributes, |r| tuples, correlation c (the rate of identical
// values).
type GenerateSpec = datagen.Spec

// Generate materialises a deterministic synthetic benchmark relation.
func Generate(spec GenerateSpec) (*Relation, error) {
	return datagen.Generate(spec)
}

// GenerateCSV streams the relation Generate would produce directly to w
// as CSV, holding one row in memory — byte-identical to Generate followed
// by Relation.WriteCSV, at O(|R|) memory for any |r|. This is how
// multi-gigabyte out-of-core fixtures are produced.
func GenerateCSV(ctx context.Context, spec GenerateSpec, w io.Writer) error {
	return datagen.Stream(ctx, spec, w)
}

// PlantedSpec describes a synthetic relation with known embedded FDs, for
// recall testing and demos: each planted X → A makes column A a
// deterministic function of the X columns.
type PlantedSpec = datagen.PlantedSpec

// GeneratePlanted materialises a relation with the spec's planted FDs
// holding by construction (acyclic plants only).
func GeneratePlanted(spec PlantedSpec) (*Relation, error) {
	return datagen.GeneratePlanted(spec)
}

// Schema is a fragment of a normalised schema.
type Schema = normalize.Schema

// Decomposition is the result of a normalisation.
type Decomposition = normalize.Decomposition

// SynthesizeThreeNF synthesises a lossless-join, dependency-preserving
// 3NF decomposition from a discovered cover.
func SynthesizeThreeNF(cover Cover, arity int) *Decomposition {
	return normalize.ThreeNF(cover, arity)
}

// DecomposeBCNF computes a lossless-join BCNF decomposition from a
// discovered cover. Exponential in schema width; capped at 24 attributes.
func DecomposeBCNF(cover Cover, arity int) (*Decomposition, error) {
	return normalize.BCNF(cover, arity)
}

// Verify reports whether every FD of the cover holds in the relation,
// returning the first violated FD otherwise.
func Verify(r *Relation, c Cover) (bool, FD) {
	return fd.AllHold(r, c)
}

// ParseFD parses a textual dependency like "depnum, year -> empnum",
// resolving attribute names against the schema. An empty left-hand side
// denotes a constant column.
func ParseFD(line string, names []string) (FD, error) {
	return fd.ParseFD(line, names)
}

// ParseCover reads one FD per line (blank lines and '#' comments
// skipped).
func ParseCover(r io.Reader, names []string) (Cover, error) {
	return fd.ParseCover(r, names)
}

// IND is an inclusion dependency between attribute sequences of (possibly
// different) relations — the foreign-key shape.
type IND = ind.IND

// INDOptions configure inclusion-dependency discovery.
type INDOptions = ind.Options

// INDResult is the outcome of inclusion-dependency discovery.
type INDResult = ind.Result

// DiscoverINDs finds unary and n-ary inclusion dependencies within and
// across the given relations (KMRS92-style): the foreign keys joining the
// fragments a normalisation produces.
func DiscoverINDs(ctx context.Context, rels []*Relation, opts INDOptions) (*INDResult, error) {
	return ind.Discover(ctx, rels, opts)
}

// KeysResult is the outcome of candidate-key discovery.
type KeysResult = keys.Result

// KeysOptions configure candidate-key discovery.
type KeysOptions = keys.Options

// DiscoverKeys finds the minimal candidate keys (minimal unique column
// combinations) of the relation instance with a levelwise partition
// search. For duplicate-free relations these coincide with the keys of
// the discovered FD cover.
func DiscoverKeys(ctx context.Context, r *Relation) (*KeysResult, error) {
	return keys.Discover(ctx, r)
}

// DiscoverKeysOpts is DiscoverKeys under explicit options (budget
// governance).
func DiscoverKeysOpts(ctx context.Context, r *Relation, opts KeysOptions) (*KeysResult, error) {
	return keys.DiscoverOpts(ctx, r, opts)
}

// FastFDsResult is the outcome of the depth-first difference-set miner.
type FastFDsResult = fastfds.Result

// FastFDsOptions configure the FastFDs miner.
type FastFDsOptions = fastfds.Options

// DiscoverFastFDs mines the same canonical cover as Discover with a
// FastFDs-style depth-first search over difference sets (Wyss et al.
// 2001) instead of the levelwise transversal search — preferable when the
// levelwise candidate levels grow too wide.
func DiscoverFastFDs(ctx context.Context, r *Relation) (*FastFDsResult, error) {
	return fastfds.Run(ctx, r)
}

// DiscoverFastFDsOpts is DiscoverFastFDs under explicit options (budget
// governance).
func DiscoverFastFDsOpts(ctx context.Context, r *Relation, opts FastFDsOptions) (*FastFDsResult, error) {
	return fastfds.RunOpts(ctx, r, opts)
}

// IncrementalMiner maintains FD discovery state under tuple insertions:
// ag(r) is updated per insert, and the cover is re-derived on demand at a
// cost independent of |r|.
type IncrementalMiner = incremental.Miner

// NewIncrementalMiner creates an empty incremental miner for a schema.
func NewIncrementalMiner(names []string) (*IncrementalMiner, error) {
	return incremental.New(names)
}

// IncrementalFromRelation creates an incremental miner pre-loaded with a
// relation's tuples.
func IncrementalFromRelation(r *Relation) (*IncrementalMiner, error) {
	return incremental.FromRelation(r)
}

// StreamedDatabase is a stripped partition database built from a CSV
// stream in one pass, without materialising the relation.
type StreamedDatabase = partition.StreamResult

// StreamCSV extracts the stripped partition database from CSV data in
// bounded memory (per-column dictionaries and tuple-id buckets only); the
// result feeds DiscoverStreamed. Real-world Armstrong relations are
// unavailable on this path because cell values are not retained.
func StreamCSV(r io.Reader, header bool) (*StreamedDatabase, error) {
	return partition.Stream(r, header)
}

// DiscoverStreamed runs FD discovery (steps 1–4; the Armstrong option is
// ignored since original values are unavailable) on a streamed partition
// database.
func DiscoverStreamed(ctx context.Context, db *StreamedDatabase, opts Options) (*Result, error) {
	return core.DiscoverFromDatabase(ctx, db.DB, opts)
}

// DiscoverFromSnapshot runs FD discovery (steps 1–4) directly off a
// durable DMSNAP1 snapshot file: columns are streamed one at a time into
// stripped partitions, so the relation is never materialised — combined
// with Options.MaxAgreeBytes this is the fully out-of-core path. It
// returns the attribute names alongside the result, since no Relation is
// available to carry them. Armstrong construction is unavailable (cell
// values are not retained) as on the other streamed paths.
func DiscoverFromSnapshot(ctx context.Context, path string, opts Options) (*Result, []string, error) {
	sr, err := durable.OpenSnapshotStream(path)
	if err != nil {
		return nil, nil, err
	}
	defer sr.Close()
	db, err := partition.NewDatabaseFromSource(sr)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.DiscoverFromDatabase(ctx, db, opts)
	return res, append([]string(nil), sr.Names()...), err
}
